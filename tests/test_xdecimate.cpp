// Tests of the xDecimate ISA extension semantics against the equations of
// Sec. 4.3 of the paper:
//   o    <- rs2[(csr[2:0]*4+3) : csr[2:0]*4]          (4-bit offsets)
//   addr <- rs1 + M*csr[15:1] + o
//   rd[(csr[2:1]*8+7) : csr[2:1]*8] <- MEM[addr]
//   csr  <- csr + 1
// and, for M=4, 2-bit offsets selected by csr[3:0].

#include <gtest/gtest.h>

#include "isa/builder.hpp"
#include "sim/core.hpp"

namespace decimate {
namespace {

using namespace reg;

struct XdecRig {
  SocMemory mem;
  CoreConfig cfg;
  Program prog;

  Core make_core() { return Core(0, mem, cfg); }
  void run(Core& core, KernelBuilder& b) {
    b.halt();
    prog = b.build();
    core.reset(prog.code, 0, MemoryMap::kL1Base + MemoryMap::kL1Size);
    core.run_segment();
  }
};

TEST(Xdecimate, M8ConvPatternFillsTwoRegisters) {
  // Conv use: duplicated offsets, two buffers. Offsets for blocks 0..3 are
  // 1, 7, 0, 5 -> duplicated nibble stream: 1,1,7,7,0,0,5,5.
  XdecRig rig;
  const uint32_t buf1 = MemoryMap::kL1Base;
  const uint32_t buf2 = MemoryMap::kL1Base + 4096;
  const int m = 8;
  const int offs[4] = {1, 7, 0, 5};
  for (int blk = 0; blk < 4; ++blk) {
    rig.mem.write8(buf1 + blk * m + offs[blk],
                   static_cast<uint8_t>(0x10 + blk));
    rig.mem.write8(buf2 + blk * m + offs[blk],
                   static_cast<uint8_t>(0x20 + blk));
  }
  uint32_t packed = 0;
  for (int j = 0; j < 8; ++j) {
    packed |= static_cast<uint32_t>(offs[j / 2]) << (4 * j);
  }
  KernelBuilder b;
  b.li(a0, static_cast<int32_t>(buf1));
  b.li(a1, static_cast<int32_t>(buf2));
  b.li(a2, static_cast<int32_t>(packed));
  b.xdec_clear();
  for (int j = 0; j < 4; ++j) {
    b.xdec(a3, a0, a2, m);  // vB1 lane j
    b.xdec(a4, a1, a2, m);  // vB2 lane j
  }
  Core core = rig.make_core();
  rig.run(core, b);
  EXPECT_EQ(core.reg(a3), 0x13121110u);
  EXPECT_EQ(core.reg(a4), 0x23222120u);
  EXPECT_EQ(core.xdec_csr(), 8u);
}

TEST(Xdecimate, CsrContinuesAcrossIterationsWithoutPointerBumps) {
  // Blocks 4..7 must be reachable with the SAME rs1 after 8 executions.
  XdecRig rig;
  const uint32_t buf = MemoryMap::kL1Base;
  const int m = 16;
  for (int blk = 0; blk < 8; ++blk) {
    rig.mem.write8(buf + blk * m + 2, static_cast<uint8_t>(blk));
  }
  // two words of duplicated offsets, all offsets = 2
  uint32_t packed = 0x22222222;
  KernelBuilder b;
  b.li(a0, static_cast<int32_t>(buf));
  b.li(a2, static_cast<int32_t>(packed));
  b.xdec_clear();
  for (int iter = 0; iter < 2; ++iter) {
    for (int j = 0; j < 4; ++j) {
      b.xdec(a3, a0, a2, m);
      b.xdec(a4, a0, a2, m);
    }
    b.mv(a5 + iter, a3);  // save a5=iter0, a6=iter1
  }
  Core core = rig.make_core();
  rig.run(core, b);
  EXPECT_EQ(core.reg(a5), 0x03020100u);  // blocks 0..3
  EXPECT_EQ(core.reg(a6), 0x07060504u);  // blocks 4..7
  EXPECT_EQ(core.xdec_csr(), 16u);
}

TEST(Xdecimate, M4TwoBitOffsets) {
  // M=4: 16 2-bit fields per word; csr[3:0] selects the field.
  XdecRig rig;
  const uint32_t buf = MemoryMap::kL1Base;
  const int offs[8] = {3, 0, 1, 2, 2, 1, 0, 3};  // blocks 0..7
  for (int blk = 0; blk < 8; ++blk) {
    rig.mem.write8(buf + blk * 4 + offs[blk], static_cast<uint8_t>(0x40 + blk));
  }
  uint32_t packed = 0;
  for (int f = 0; f < 16; ++f) {
    packed |= static_cast<uint32_t>(offs[f / 2]) << (2 * f);  // duplicated
  }
  KernelBuilder b;
  b.li(a0, static_cast<int32_t>(buf));
  b.li(a2, static_cast<int32_t>(packed));
  b.xdec_clear();
  for (int j = 0; j < 8; ++j) {
    b.xdec(a3, a0, a2, 4);
    b.xdec(a4, a0, a2, 4);
  }
  b.mv(a5, a3);
  Core core = rig.make_core();
  rig.run(core, b);
  // After 16 calls the two registers hold blocks 0..3 then 4..7... the
  // second batch overwrites lanes 0..3, so a3 holds blocks 4..7.
  EXPECT_EQ(core.reg(a5), 0x47464544u);
  EXPECT_EQ(core.xdec_csr(), 16u);
}

TEST(Xdecimate, FcInterleavedPatternAlternatesChannels) {
  // FC use: offsets of channels i and i+1 interleaved; alternating rd.
  XdecRig rig;
  const uint32_t act = MemoryMap::kL1Base;
  const int m = 8;
  const int off_ch0[4] = {0, 3, 6, 1};
  const int off_ch1[4] = {7, 2, 5, 4};
  for (int blk = 0; blk < 4; ++blk) {
    rig.mem.write8(act + blk * m + off_ch0[blk],
                   static_cast<uint8_t>(0x50 + blk));
    rig.mem.write8(act + blk * m + off_ch1[blk],
                   static_cast<uint8_t>(0x60 + blk));
  }
  uint32_t packed = 0;
  for (int blk = 0; blk < 4; ++blk) {
    packed |= static_cast<uint32_t>(off_ch0[blk]) << (4 * (2 * blk));
    packed |= static_cast<uint32_t>(off_ch1[blk]) << (4 * (2 * blk + 1));
  }
  KernelBuilder b;
  b.li(a0, static_cast<int32_t>(act));
  b.li(a2, static_cast<int32_t>(packed));
  b.xdec_clear();
  for (int blk = 0; blk < 4; ++blk) {
    b.xdec(a3, a0, a2, m);  // channel i
    b.xdec(a4, a0, a2, m);  // channel i+1
  }
  Core core = rig.make_core();
  rig.run(core, b);
  EXPECT_EQ(core.reg(a3), 0x53525150u);
  EXPECT_EQ(core.reg(a4), 0x63626160u);
}

TEST(Xdecimate, ClearResetsCsr) {
  XdecRig rig;
  rig.mem.write8(MemoryMap::kL1Base, 0x77);
  KernelBuilder b;
  b.li(a0, static_cast<int32_t>(MemoryMap::kL1Base));
  b.li(a2, 0);
  b.xdec(a3, a0, a2, 8);
  b.xdec(a3, a0, a2, 8);
  b.xdec_clear();
  b.xdec(a4, a0, a2, 8);  // back to block 0, lane 0
  Core core = rig.make_core();
  rig.run(core, b);
  EXPECT_EQ(core.reg(a4) & 0xFF, 0x77u);
  EXPECT_EQ(core.xdec_csr(), 1u);
}

TEST(Xdecimate, ForwardingRemovesBackToBackStall) {
  // Without WB->EX forwarding, each xdec following another xdec stalls one
  // cycle on the csr dependency.
  auto run_with = [&](bool forwarding) {
    SocMemory mem;
    CoreConfig cfg;
    cfg.xdec_forwarding = forwarding;
    KernelBuilder b;
    b.li(a0, static_cast<int32_t>(MemoryMap::kL1Base));
    b.li(a2, 0);
    for (int i = 0; i < 8; ++i) b.xdec(a3, a0, a2, 8);
    b.halt();
    Program p = b.build();
    Core core(0, mem, cfg);
    core.reset(p.code, 0, MemoryMap::kL1Base + 1024);
    core.run_segment();
    return core.stats();
  };
  const auto with_fwd = run_with(true);
  const auto without_fwd = run_with(false);
  EXPECT_EQ(with_fwd.xdec_stall_cycles, 0u);
  EXPECT_EQ(without_fwd.xdec_stall_cycles, 7u);
  EXPECT_EQ(without_fwd.cycles, with_fwd.cycles + 7);
}

TEST(Xdecimate, PeekMemAddrMatchesExecutedAddress) {
  XdecRig rig;
  rig.mem.write8(MemoryMap::kL1Base + 2 * 8 + 5, 0x99);
  KernelBuilder b;
  b.li(a0, static_cast<int32_t>(MemoryMap::kL1Base));
  b.li(a2, 0x555555);
  b.xdec(a3, a0, a2, 8);
  b.xdec(a3, a0, a2, 8);
  b.xdec(a3, a0, a2, 8);
  b.xdec(a3, a0, a2, 8);
  b.xdec(a3, a0, a2, 8);
  b.halt();
  Program p = b.build();
  Core core(0, rig.mem, rig.cfg);
  core.reset(p.code, 0, MemoryMap::kL1Base + 1024);
  // step the two li
  core.step();
  core.step();
  core.step();  // li expands to 2 instrs for big constants; step until xdec
  while (core.pc() < p.code.size() &&
         p.code[core.pc()].op != Opcode::kXdec) {
    core.step();
  }
  // csr = 0: o = 5, block 0, addr = base + 5
  EXPECT_EQ(core.peek_mem_addr(), MemoryMap::kL1Base + 5);
  core.step();  // csr -> 1
  EXPECT_EQ(core.peek_mem_addr(), MemoryMap::kL1Base + 5);
  core.step();  // csr -> 2: block 1, o = 5
  EXPECT_EQ(core.peek_mem_addr(), MemoryMap::kL1Base + 8 + 5);
}

}  // namespace
}  // namespace decimate
