// Exec-layer tests: compile-once/execute-many. A CompiledPlan reused over
// N inputs (or a batch) must be bit-exact — outputs AND per-layer cycle
// reports — with N independent ScheduleExecutor::run calls, while each
// unique (kernel, tile geometry) is simulated on the ISS only once across
// the whole batch.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>

#include "compiler/schedule.hpp"
#include "exec/compile.hpp"
#include "exec/engine.hpp"
#include "exec/tile_runner.hpp"
#include "models/models.hpp"

namespace decimate {
namespace {

void expect_same_report(const LayerReport& a, const LayerReport& b) {
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.impl, b.impl);
  EXPECT_EQ(a.macs, b.macs);
  EXPECT_EQ(a.compute_cycles, b.compute_cycles);
  EXPECT_EQ(a.dma_cycles, b.dma_cycles);
  EXPECT_EQ(a.weight_dma_cycles, b.weight_dma_cycles);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.weight_bytes, b.weight_bytes);
  EXPECT_EQ(a.tiles, b.tiles);
  EXPECT_EQ(a.bits_per_weight, b.bits_per_weight);
}

void expect_same_run(const NetworkRun& a, const NetworkRun& b) {
  EXPECT_TRUE(a.output == b.output);
  EXPECT_EQ(a.total_cycles, b.total_cycles);
  EXPECT_EQ(a.total_macs, b.total_macs);
  EXPECT_EQ(a.weight_bytes, b.weight_bytes);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (size_t i = 0; i < a.layers.size(); ++i) {
    expect_same_report(a.layers[i], b.layers[i]);
  }
}

Graph scaled_resnet18(int sparsity_m = 8) {
  Resnet18Options opt;
  opt.sparsity_m = sparsity_m;
  opt.input_hw = 16;  // scaled-down spatial size for test speed
  return build_resnet18(opt);
}

Graph scaled_vit(int sparsity_m = 8) {
  VitOptions opt;
  opt.image_hw = 64;
  opt.dim = 64;
  opt.depth = 2;
  opt.heads = 2;
  opt.mlp = 256;
  opt.sparsity_m = sparsity_m;
  return build_vit(opt);
}

CompileOptions isa_options() {
  CompileOptions opt;
  opt.enable_isa = true;
  return opt;
}

std::vector<Tensor8> distinct_inputs(const std::vector<int>& shape, int n,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<Tensor8> inputs;
  for (int i = 0; i < n; ++i) inputs.push_back(Tensor8::random(shape, rng));
  return inputs;
}

TEST(Exec, PlanReuseBitExactWithFreshExecutorsResnet18) {
  const Graph g = scaled_resnet18();
  const CompileOptions opt = isa_options();
  const auto inputs = distinct_inputs({16, 16, 4}, 4, 11);

  Compiler compiler(opt);
  const CompiledPlan plan = compiler.compile(g);
  ExecutionEngine engine;

  for (const Tensor8& input : inputs) {
    const NetworkRun reused = engine.run(plan, input);
    ScheduleExecutor fresh(opt);  // fresh latency cache, re-simulates
    const NetworkRun reference = fresh.run(g, input);
    expect_same_run(reused, reference);
  }
}

TEST(Exec, RunBatchMatchesIndividualRunsResnet18) {
  const Graph g = scaled_resnet18();
  const auto inputs = distinct_inputs({16, 16, 4}, 4, 12);

  Compiler compiler(isa_options());
  const CompiledPlan plan = compiler.compile(g);
  ExecutionEngine engine;
  const BatchRun batch = engine.run_batch(plan, inputs);

  ASSERT_EQ(batch.runs.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    expect_same_run(batch.runs[i], engine.run(plan, inputs[i]));
  }
  // cycle reports are input-independent: identical across the batch
  EXPECT_EQ(batch.runs[0].total_cycles, batch.runs[1].total_cycles);
  // the pipelined batch model overlaps DMA across images: never slower
  // than the independent per-image sum, and both are populated
  EXPECT_GT(batch.batch_cycles, 0u);
  EXPECT_EQ(batch.sequential_cycles,
            batch.runs[0].total_cycles * batch.runs.size());
  EXPECT_LE(batch.batch_cycles, batch.sequential_cycles);
}

TEST(Exec, RunBatchBitExactWithFreshExecutorsVit) {
  const Graph g = scaled_vit();
  const CompileOptions opt = isa_options();
  const auto inputs = distinct_inputs({64, 64, 4}, 2, 13);

  Compiler compiler(opt);
  const CompiledPlan plan = compiler.compile(g);
  ExecutionEngine engine;
  const BatchRun batch = engine.run_batch(plan, inputs);

  ASSERT_EQ(batch.runs.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    ScheduleExecutor fresh(opt);
    expect_same_run(batch.runs[i], fresh.run(g, inputs[i]));
  }
}

TEST(Exec, UniqueTileSimulatedOnceAcrossBatch) {
  const Graph g = scaled_resnet18();
  Compiler compiler(isa_options());
  const CompiledPlan plan = compiler.compile(g);

  // every ISS simulation happened at compile time, one per unique tile
  const uint64_t misses_after_compile = compiler.latencies().misses();
  EXPECT_GT(misses_after_compile, 0u);
  EXPECT_EQ(misses_after_compile, compiler.latencies().size());

  ExecutionEngine engine;
  const auto inputs = distinct_inputs({16, 16, 4}, 4, 14);
  engine.run_batch(plan, inputs);
  EXPECT_EQ(compiler.latencies().misses(), misses_after_compile);

  // recompiling the same graph hits the cache for every tile
  compiler.compile(g);
  EXPECT_EQ(compiler.latencies().misses(), misses_after_compile);
}

TEST(Exec, LatencyCacheSharedAcrossCompilers) {
  const Graph g = scaled_resnet18();
  Compiler first(isa_options());
  first.compile(g);
  const uint64_t misses = first.latencies().misses();

  Compiler second(isa_options(), first.shared_latencies());
  second.compile(g);
  EXPECT_EQ(second.latencies().misses(), misses);
}

TEST(Exec, PlanCarriesDeploymentArtifacts) {
  const Graph g = scaled_resnet18();
  Compiler compiler(isa_options());
  const CompiledPlan plan = compiler.compile(g);

  EXPECT_EQ(plan.graph, &g);
  EXPECT_GT(plan.weight_bytes, 0);
  EXPECT_GT(plan.total_cycles, 0u);
  EXPECT_EQ(plan.weight_region, Compiler::weight_region(plan.weight_bytes));
  EXPECT_EQ(plan.steps.size(), static_cast<size_t>(g.size() - 1));

  int gemm_steps = 0, packed_steps = 0;
  for (const PlanStep& step : plan.steps) {
    const Node& node = g.node(step.node_id);
    EXPECT_EQ(step.op, node.op);
    if (node.op == OpType::kConv2d || node.op == OpType::kFc ||
        node.op == OpType::kMatmul) {
      ++gemm_steps;
      EXPECT_NE(step.program, nullptr) << node.name;
      EXPECT_GT(step.program->size(), 0) << node.name;
      EXPECT_GT(step.report.tiles, 0) << node.name;
      if (step.choice.sparse()) {
        EXPECT_TRUE(step.has_packed) << node.name;
        EXPECT_EQ(step.packed.m, step.choice.m) << node.name;
        EXPECT_EQ(step.packed.layout,
                  TileRunner::layout_for(step.choice.kind))
            << node.name;
        ++packed_steps;
      }
    }
  }
  EXPECT_GT(gemm_steps, 0);
  EXPECT_EQ(packed_steps, 16);  // 8 residual blocks x 2 sparse 3x3 convs
}

TEST(Exec, VerifyWithSimOnReusedPlan) {
  // Single-tile layers replay on the ISS with the plan's pre-packed
  // weights; a reused plan must verify for every batch element.
  VitOptions vopt;
  vopt.image_hw = 32;
  vopt.dim = 32;
  vopt.depth = 1;
  vopt.heads = 2;
  vopt.mlp = 64;
  vopt.sparsity_m = 8;
  const Graph g = build_vit(vopt);

  Compiler compiler(isa_options());
  const CompiledPlan plan = compiler.compile(g);
  ExecutionEngine engine;
  engine.set_verify_with_sim(true);
  const auto inputs = distinct_inputs({32, 32, 4}, 2, 15);
  const auto batch = engine.run_batch(plan, inputs);  // throws on mismatch
  EXPECT_EQ(batch.runs.size(), 2u);
}

TEST(Exec, HostKernelDispatchBitExactWithReferenceOps) {
  // the host kernel layer (sparse N:M gather + blocked dense) must match
  // the scalar reference path bit for bit across a whole model, for both
  // SW-kernel and ISA-kernel packings (kSw vs dup/interleaved layouts)
  for (const bool isa : {false, true}) {
    CompileOptions opt;
    opt.enable_isa = isa;
    const Graph g = scaled_resnet18();
    Compiler compiler(opt);
    const CompiledPlan plan = compiler.compile(g);

    ExecutionEngine host_engine;  // host kernels on by default
    ExecutionEngine ref_engine;
    ref_engine.set_use_host_kernels(false);
    const auto inputs = distinct_inputs({16, 16, 4}, 3, 21);
    for (const Tensor8& input : inputs) {
      expect_same_run(host_engine.run(plan, input),
                      ref_engine.run(plan, input));
    }
  }
}

TEST(Exec, HostKernelDispatchBitExactOnVit) {
  const Graph g = scaled_vit();  // conv stem + FC + matmul + layernorm
  Compiler compiler(isa_options());
  const CompiledPlan plan = compiler.compile(g);
  ExecutionEngine host_engine;
  ExecutionEngine ref_engine;
  ref_engine.set_use_host_kernels(false);
  const Tensor8 input = distinct_inputs({64, 64, 4}, 1, 22).front();
  expect_same_run(host_engine.run(plan, input), ref_engine.run(plan, input));
}

TEST(Exec, IntraImageThreadingBitExactOnResnet18AndVit) {
  // splitting each gemm step's output rows (conv) / tokens or channels
  // (FC, matmul) across the pool must be bit-identical to the serial
  // path — outputs AND reports — at any thread count, with the MAC floor
  // zeroed so even the tiniest steps take the parallel path
  for (const bool vit : {false, true}) {
    const Graph g = vit ? scaled_vit() : scaled_resnet18();
    Compiler compiler(isa_options());
    const CompiledPlan plan = compiler.compile(g);
    const std::vector<int> shape =
        vit ? std::vector<int>{64, 64, 4} : std::vector<int>{16, 16, 4};
    const auto inputs = distinct_inputs(shape, 2, 31);

    ExecutionEngine serial;
    serial.set_intra_image_threads(1);
    for (const int threads : {2, 5}) {
      ExecutionEngine threaded;
      threaded.set_intra_image_threads(threads);
      threaded.set_intra_mac_floor(0);
      for (const Tensor8& input : inputs) {
        expect_same_run(threaded.run(plan, input), serial.run(plan, input));
      }
    }
  }
}

TEST(Exec, IntraImageThreadsFollowPlanOptionsByDefault) {
  // CompileOptions::host_threads drives an engine left at the default
  // (-1); the knob changes wall-clock routing only, never bytes
  const Graph g = scaled_resnet18();
  CompileOptions opt = isa_options();
  opt.host_threads = 3;
  Compiler compiler(opt);
  const CompiledPlan plan = compiler.compile(g);

  Compiler serial_compiler(isa_options());  // host_threads = 1
  const CompiledPlan serial_plan = serial_compiler.compile(g);

  ExecutionEngine follows_plan;  // intra threads default -1
  follows_plan.set_intra_mac_floor(0);
  ExecutionEngine serial;
  const Tensor8 input = distinct_inputs({16, 16, 4}, 1, 32).front();
  expect_same_run(follows_plan.run(plan, input),
                  serial.run(serial_plan, input));
}

TEST(Exec, BatchAndIntraImageParallelismCompose) {
  // run_batch image tasks claim pool slots; an intra-image split fired
  // inside one must nest inline (WorkerPool guard) and stay bit-exact
  const Graph g = scaled_resnet18();
  Compiler compiler(isa_options());
  const CompiledPlan plan = compiler.compile(g);
  const auto inputs = distinct_inputs({16, 16, 4}, 4, 33);

  ExecutionEngine engine;
  engine.set_workers(3);
  engine.set_intra_image_threads(4);
  engine.set_intra_mac_floor(0);
  const BatchRun batch = engine.run_batch(plan, inputs);

  ExecutionEngine serial;
  serial.set_intra_image_threads(1);
  ASSERT_EQ(batch.runs.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    expect_same_run(batch.runs[i], serial.run(plan, inputs[i]));
  }
}

TEST(Exec, RunBatchReusesThePersistentWorkerPool) {
  const Graph g = scaled_resnet18();
  Compiler compiler(isa_options());
  const CompiledPlan plan = compiler.compile(g);
  ExecutionEngine engine;
  engine.set_workers(3);
  const auto inputs = distinct_inputs({16, 16, 4}, 4, 23);
  const BatchRun first = engine.run_batch(plan, inputs);
  const BatchRun second = engine.run_batch(plan, inputs);  // pool reused
  for (size_t i = 0; i < inputs.size(); ++i) {
    expect_same_run(first.runs[i], second.runs[i]);
  }
}

TEST(Exec, LatencyCacheRoundTripsThroughAFile) {
  const std::string path =
      ::testing::TempDir() + "/decimate_latency_cache.bin";
  const Graph g = scaled_resnet18();
  CompileOptions opt = isa_options();
  opt.latency_cache_path = path;
  {
    Compiler compiler(opt);  // file absent: cold start
    compiler.compile(g);
    EXPECT_GT(compiler.latencies().misses(), 0u);
    EXPECT_EQ(compiler.save_latencies(), compiler.latencies().size());
  }
  // a fresh compiler warm-starts from the file: zero ISS simulations
  Compiler warm(opt);
  EXPECT_GT(warm.latencies().size(), 0u);
  const CompiledPlan plan = warm.compile(g);
  EXPECT_EQ(warm.latencies().misses(), 0u);
  EXPECT_GT(plan.total_cycles, 0u);

  // and the warm plan is identical to a cold-compiled one
  CompileOptions cold_opt = isa_options();
  Compiler cold(cold_opt);
  const CompiledPlan cold_plan = cold.compile(g);
  EXPECT_EQ(plan.total_cycles, cold_plan.total_cycles);
  ASSERT_EQ(plan.steps.size(), cold_plan.steps.size());
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    expect_same_report(plan.steps[i].report, cold_plan.steps[i].report);
  }
  std::remove(path.c_str());
}

TEST(Exec, LatencyCacheLoadKeepsMeasuredEntries) {
  const std::string path =
      ::testing::TempDir() + "/decimate_latency_merge.bin";
  TileLatencyCache a;
  const TileKey key = fc_tile_key(KernelKind::kFcDense, 0, {4, 64, 8}, 1);
  EXPECT_EQ(a.measure(key, [] { return 111u; }), 111u);
  EXPECT_EQ(a.save(path), 1u);

  TileLatencyCache b;
  b.measure(key, [] { return 222u; });  // measured before the load
  EXPECT_EQ(b.load(path), 0u);          // existing key wins
  EXPECT_EQ(b.measure(key, [] { return 333u; }), 222u);

  TileLatencyCache c;
  EXPECT_EQ(c.load(path), 1u);
  // loaded entry satisfies measure() without running the simulation
  EXPECT_EQ(c.measure(key,
                      []() -> uint64_t {
                        ADD_FAILURE() << "simulated a loaded key";
                        return 0;
                      }),
            111u);
  EXPECT_EQ(c.load("/nonexistent/latency.bin"), 0u);  // missing file is ok
  std::remove(path.c_str());
}

TEST(Exec, ProgramCacheIsThreadSafe) {
  const std::pair<KernelKind, int> wanted[] = {
      {KernelKind::kConvDense4x2, 0},  {KernelKind::kConvDense1x2, 0},
      {KernelKind::kConvSparseSw, 8},  {KernelKind::kConvSparseIsa, 16},
      {KernelKind::kFcDense, 0},       {KernelKind::kFcSparseSw, 4},
      {KernelKind::kFcSparseIsa, 8},
  };
  std::vector<std::thread> threads;
  std::array<const Program*, 8 * std::size(wanted)> seen{};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([t, &wanted, &seen] {
      for (size_t i = 0; i < std::size(wanted); ++i) {
        seen[t * std::size(wanted) + i] =
            &TileRunner::program_for(wanted[i].first, wanted[i].second);
      }
    });
  }
  for (auto& th : threads) th.join();
  // all threads observed the same cached Program instances
  for (size_t i = 0; i < std::size(wanted); ++i) {
    for (int t = 1; t < 8; ++t) {
      EXPECT_EQ(seen[t * std::size(wanted) + i], seen[i]);
    }
  }
}

}  // namespace
}  // namespace decimate
