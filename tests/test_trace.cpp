// Observability tests: the metrics registry (handle identity, histogram
// buckets and percentiles against a sorted oracle, deterministic JSON
// snapshots under concurrent increments — the TSan target), cycle-level
// energy attribution arithmetic, and — in DECIMATE_TRACE builds — span
// recording: nesting on one thread and across WorkerPool workers, ring
// wrap keeping the newest events, runtime disable, flow/arg stamping, and
// well-formedness of the exported Chrome trace JSON. The untraced build
// instead proves the zero-cost contract: TraceScope is an empty type and
// every entry point is inert.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "exec/plan.hpp"
#include "exec/worker_pool.hpp"
#include "hw/energy.hpp"
#include "trace/energy_attr.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace decimate {
namespace {

#if !DECIMATE_TRACE_ENABLED
// The zero-cost contract is compile-time: without -DDECIMATE_TRACE=ON the
// span type carries no state and can be elided entirely.
static_assert(std::is_empty_v<trace::TraceScope>,
              "untraced TraceScope must be an empty type");
#endif

// --- metrics registry -------------------------------------------------------

TEST(Metrics, HandlesAreStableAndFindOrCreate) {
  metrics::Counter& c1 = metrics::registry().counter("test.identity.counter");
  metrics::Counter& c2 = metrics::registry().counter("test.identity.counter");
  EXPECT_EQ(&c1, &c2);
  c1.reset();
  c1.inc();
  c1.inc(41);
  EXPECT_EQ(c2.value(), 42u);

  metrics::Gauge& g = metrics::registry().gauge("test.identity.gauge");
  g.set(-5);
  g.add(15);
  EXPECT_EQ(g.value(), 10);
  EXPECT_EQ(&g, &metrics::registry().gauge("test.identity.gauge"));

  // a counter name does not alias a gauge name
  metrics::registry().gauge("test.identity.counter").set(7);
  EXPECT_EQ(c1.value(), 42u);
}

TEST(Metrics, HistogramBucketRoundTrip) {
  for (int b = 0; b < metrics::Histogram::kBuckets; ++b) {
    EXPECT_EQ(metrics::Histogram::bucket_of(metrics::Histogram::bucket_rep(b)),
              b)
        << "bucket " << b;
  }
  // monotone: a larger value never lands in a smaller bucket
  int prev = -1;
  for (uint64_t v = 0; v < 4096; ++v) {
    const int b = metrics::Histogram::bucket_of(v);
    EXPECT_GE(b, prev) << "value " << v;
    prev = b;
  }
  // values below 16 are their own bucket
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(metrics::Histogram::bucket_rep(metrics::Histogram::bucket_of(v)),
              v);
  }
}

TEST(Metrics, HistogramPercentilesMatchSortedOracle) {
  metrics::Histogram& h =
      metrics::registry().histogram("test.percentile.hist");
  h.reset();
  // deterministic LCG spanning several magnitudes, small values included
  std::vector<uint64_t> vals;
  uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 5000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    vals.push_back((x >> 33) % (i % 3 == 0 ? 13 : 2'000'000));
  }
  for (uint64_t v : vals) h.observe(v);
  std::vector<uint64_t> sorted = vals;
  std::sort(sorted.begin(), sorted.end());

  EXPECT_EQ(h.count(), vals.size());
  EXPECT_EQ(h.max(), sorted.back());
  EXPECT_EQ(h.min(), sorted.front());
  EXPECT_EQ(h.percentile(1.0), sorted.back());  // p >= 1 is the exact max

  for (const double p : {0.5, 0.9, 0.95, 0.99}) {
    // the implementation's rank convention: floor(p * n) + 1, clamped to n
    const size_t rank = std::min(
        sorted.size(),
        static_cast<size_t>(p * static_cast<double>(sorted.size())) + 1);
    const uint64_t oracle = sorted[rank - 1];
    // the histogram reports the midpoint of the bucket that holds the
    // oracle order statistic...
    EXPECT_EQ(h.percentile(p),
              metrics::Histogram::bucket_rep(
                  metrics::Histogram::bucket_of(oracle)))
        << "p" << p;
    // ...which is within the documented ~6% of the true value
    const double err =
        std::abs(static_cast<double>(h.percentile(p)) -
                 static_cast<double>(oracle));
    EXPECT_LE(err, static_cast<double>(oracle) / 14.0 + 0.51) << "p" << p;
  }
}

TEST(Metrics, HistogramExactRangeIsExact) {
  metrics::Histogram& h = metrics::registry().histogram("test.exact.hist");
  h.reset();
  const std::vector<uint64_t> vals = {0, 1, 1, 2, 3, 5, 8, 13, 15, 15};
  for (uint64_t v : vals) h.observe(v);
  EXPECT_EQ(h.percentile(0.5), 5u);   // rank floor(0.5*10)+1 = 6th smallest
  EXPECT_EQ(h.percentile(0.9), 15u);  // 10th smallest
  EXPECT_EQ(h.sum(), 63u);
  EXPECT_DOUBLE_EQ(h.mean(), 6.3);
}

TEST(Metrics, SnapshotDeterministicUnderConcurrentIncrements) {
  metrics::Counter& c = metrics::registry().counter("test.concurrent.counter");
  metrics::Histogram& h =
      metrics::registry().histogram("test.concurrent.hist");
  c.reset();
  h.reset();
  constexpr int kThreads = 4, kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(static_cast<uint64_t>(t * kPerThread + i));
      }
    });
  }
  // snapshots taken WHILE writers run must not crash or race (TSan runs
  // this suite); their content is whatever the atomics held at read time
  for (int i = 0; i < 50; ++i) {
    const std::string s = metrics::registry().snapshot_json();
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s.front(), '{');
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kPerThread);
  // quiescent state: byte-identical snapshots, counters at exact totals
  const std::string s1 = metrics::registry().snapshot_json();
  const std::string s2 = metrics::registry().snapshot_json();
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1.find("\"test.concurrent.counter\": 80000"), std::string::npos);
}

// --- energy attribution -----------------------------------------------------

TEST(EnergyAttr, StepEnergyMatchesHandFormula) {
  LayerReport r;
  r.compute_cycles = 1000;
  r.total_cycles = 1600;
  r.dma_cycles = 500;
  r.weight_dma_cycles = 200;
  const EnergyModel model;  // defaults: core 2.0 pJ/cyc, 8 B/dma-cycle
  const EnergyConfig& cfg = model.config();

  const EnergyBreakdown e8 = trace::step_energy(model, r, 8, MemRegion::kL2);
  EXPECT_DOUBLE_EQ(e8.compute_nj, 1000 * cfg.core_pj_per_cycle * 8 * 1e-3);
  EXPECT_DOUBLE_EQ(e8.idle_nj, 600 * cfg.idle_pj_per_cycle * 8 * 1e-3);
  // all 500 dma cycles * 8 B at the L2 rate
  EXPECT_DOUBLE_EQ(e8.dma_nj, 4000 * cfg.dma_l2_pj_per_byte * 1e-3);

  // L3-resident weights: the 200-cycle weight share pays the ~10x rate
  const EnergyBreakdown e3 = trace::step_energy(model, r, 8, MemRegion::kL3);
  EXPECT_DOUBLE_EQ(e3.dma_nj, (2400 * cfg.dma_l2_pj_per_byte +
                               1600 * cfg.dma_l3_pj_per_byte) *
                                  1e-3);
  EXPECT_GT(e3.total_nj(), e8.total_nj());

  // twice the cores, twice the busy/idle energy, same DMA
  const EnergyBreakdown e16 = trace::step_energy(model, r, 16, MemRegion::kL2);
  EXPECT_DOUBLE_EQ(e16.compute_nj, 2 * e8.compute_nj);
  EXPECT_DOUBLE_EQ(e16.idle_nj, 2 * e8.idle_nj);
  EXPECT_DOUBLE_EQ(e16.dma_nj, e8.dma_nj);
}

// --- span tracing -----------------------------------------------------------

TEST(Trace, DisabledBuildCompilesToNothing) {
#if DECIMATE_TRACE_ENABLED
  GTEST_SKIP() << "tracing compiled in; the zero-cost path is the other build";
#else
  EXPECT_FALSE(trace::enabled());
  trace::set_enabled(true);  // inert
  EXPECT_FALSE(trace::enabled());
  {
    trace::TraceScope s(trace::Cat::kExec, "noop");
    s.arg("a", 1);
    s.sarg("b", "c");
    s.cycles(2);
    s.flow(3, trace::Flow::kStart);
  }
  trace::instant(trace::Cat::kServe, "noop.instant");
  EXPECT_EQ(trace::event_count(), 0u);
  EXPECT_TRUE(trace::export_chrome_string().empty());
  EXPECT_STREQ(trace::cat_name(trace::Cat::kKernel), "kernel");
#endif
}

#if DECIMATE_TRACE_ENABLED

std::vector<trace::Event> events_named(const char* name) {
  std::vector<trace::Event> out;
  trace::for_each_event([&](const trace::Event& e) {
    if (std::string(e.name) == name) out.push_back(e);
  });
  return out;
}

bool contains(const trace::Event& outer, const trace::Event& inner) {
  return outer.tid == inner.tid && outer.ts_ns <= inner.ts_ns &&
         inner.ts_ns + inner.dur_ns <= outer.ts_ns + outer.dur_ns;
}

TEST(Trace, SpanNestingOnOneThread) {
  trace::clear();
  {
    trace::TraceScope outer(trace::Cat::kExec, "test.outer");
    outer.cycles(123);
    {
      trace::TraceScope inner(trace::Cat::kKernel, "test.inner");
      inner.arg("depth", 2);
    }
  }
  const auto outers = events_named("test.outer");
  const auto inners = events_named("test.inner");
  ASSERT_EQ(outers.size(), 1u);
  ASSERT_EQ(inners.size(), 1u);
  EXPECT_TRUE(contains(outers[0], inners[0]));
  EXPECT_EQ(outers[0].cycles, 123u);
  EXPECT_EQ(outers[0].ph, 'X');
  EXPECT_EQ(inners[0].nargs, 1);
  EXPECT_EQ(inners[0].aval[0], 2);
}

TEST(Trace, SpanNestingAcrossWorkerPoolThreads) {
  trace::clear();
  std::mutex mu;
  std::set<std::thread::id> used;
  WorkerPool pool(3);
  pool.run(16, [&](int i) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      used.insert(std::this_thread::get_id());
    }
    trace::TraceScope s(trace::Cat::kExec, "test.pooltask");
    s.arg("i", i);
  });
  // every one of our spans sits inside the pool's own "pool.task" span on
  // the same thread track
  const auto tasks = events_named("pool.task");
  const auto ours = events_named("test.pooltask");
  ASSERT_EQ(ours.size(), 16u);
  ASSERT_GE(tasks.size(), 16u);
  for (const trace::Event& mine : ours) {
    bool nested = false;
    for (const trace::Event& t : tasks) nested = nested || contains(t, mine);
    EXPECT_TRUE(nested) << "span i=" << mine.aval[0]
                        << " not nested in a pool.task span";
  }
  // span tids partition by real thread: distinct trace tids == distinct
  // std::thread ids that executed tasks
  std::set<uint32_t> tids;
  for (const trace::Event& e : ours) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), used.size());
}

TEST(Trace, RingWrapKeepsTheNewestEvents) {
  trace::clear();
  trace::set_ring_capacity(8);  // applies to buffers created after
  std::thread t([] {
    for (int i = 0; i < 20; ++i) {
      trace::instant(trace::Cat::kExec, "test.wrap", 0, trace::Flow::kNone,
                     "i", i);
    }
  });
  t.join();
  trace::set_ring_capacity(size_t{1} << 14);
  const auto kept = events_named("test.wrap");
  ASSERT_EQ(kept.size(), 8u);  // ring holds the 8 newest of 20
  for (size_t j = 0; j < kept.size(); ++j) {
    EXPECT_EQ(kept[j].aval[0], static_cast<int64_t>(12 + j));  // oldest-first
  }
}

TEST(Trace, RuntimeDisableDropsEvents) {
  trace::clear();
  trace::set_enabled(false);
  {
    trace::TraceScope s(trace::Cat::kExec, "test.dropped");
  }
  trace::instant(trace::Cat::kExec, "test.dropped");
  trace::set_enabled(true);
  EXPECT_TRUE(events_named("test.dropped").empty());
}

TEST(Trace, FlowAndArgsAreStamped) {
  trace::clear();
  trace::instant(trace::Cat::kServe, "test.flow", 41, trace::Flow::kStart,
                 "x", 7, "s", "v");
  const auto got = events_named("test.flow");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].ph, 'i');
  EXPECT_EQ(got[0].flow, trace::Flow::kStart);
  EXPECT_EQ(got[0].flow_id, 42u);  // request id + 1
  ASSERT_EQ(got[0].nargs, 1);
  EXPECT_EQ(got[0].aval[0], 7);
  ASSERT_EQ(got[0].nsargs, 1);
  EXPECT_STREQ(got[0].sval[0], "v");
}

// Minimal JSON validator: enough grammar to prove the export parses
// (strings with escapes, numbers, literals, arrays, objects).
struct JsonScan {
  const char* p;
  const char* end;
  bool ok = true;

  void ws() {
    while (p < end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r')) {
      ++p;
    }
  }
  bool lit(const char* s) {
    const size_t n = std::string(s).size();
    if (static_cast<size_t>(end - p) < n ||
        std::string(p, p + n) != s) {
      return false;
    }
    p += n;
    return true;
  }
  void string() {
    if (p >= end || *p != '"') {
      ok = false;
      return;
    }
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') ++p;  // skip the escaped char
      ++p;
    }
    if (p >= end) {
      ok = false;
      return;
    }
    ++p;  // closing quote
  }
  void number() {
    if (p < end && *p == '-') ++p;
    const char* start = p;
    while (p < end && ((*p >= '0' && *p <= '9') || *p == '.' || *p == 'e' ||
                       *p == 'E' || *p == '+' || *p == '-')) {
      ++p;
    }
    if (p == start) ok = false;
  }
  void value() {
    ws();
    if (!ok || p >= end) {
      ok = false;
      return;
    }
    if (*p == '"') {
      string();
    } else if (*p == '{') {
      ++p;
      ws();
      if (p < end && *p == '}') {
        ++p;
        return;
      }
      for (;;) {
        ws();
        string();
        ws();
        if (!ok || p >= end || *p != ':') {
          ok = false;
          return;
        }
        ++p;
        value();
        ws();
        if (!ok || p >= end) {
          ok = false;
          return;
        }
        if (*p == ',') {
          ++p;
          continue;
        }
        if (*p == '}') {
          ++p;
          return;
        }
        ok = false;
        return;
      }
    } else if (*p == '[') {
      ++p;
      ws();
      if (p < end && *p == ']') {
        ++p;
        return;
      }
      for (;;) {
        value();
        ws();
        if (!ok || p >= end) {
          ok = false;
          return;
        }
        if (*p == ',') {
          ++p;
          continue;
        }
        if (*p == ']') {
          ++p;
          return;
        }
        ok = false;
        return;
      }
    } else if (!lit("true") && !lit("false") && !lit("null")) {
      number();
    }
  }
};

bool json_well_formed(const std::string& s) {
  JsonScan scan{s.data(), s.data() + s.size()};
  scan.value();
  scan.ws();
  return scan.ok && scan.p == scan.end;
}

TEST(Trace, ChromeExportIsWellFormedJson) {
  ASSERT_TRUE(json_well_formed("{\"a\":[1,2.5,\"x\\\"y\"],\"b\":{}}"));
  ASSERT_FALSE(json_well_formed("{\"a\":[1,]}"));
  ASSERT_FALSE(json_well_formed("{\"a\":1"));

  trace::clear();
  trace::set_thread_name("test.main");
  {
    trace::TraceScope s(trace::Cat::kDispatch, "test.json \"quoted\\name");
    s.arg("batch", 4);
    s.sarg("mode", "fused");
    s.cycles(99);
    s.flow(7, trace::Flow::kStep);
  }
  trace::instant(trace::Cat::kServe, "test.json.instant", 7,
                 trace::Flow::kEnd);
  const std::string json = trace::export_chrome_string();
  EXPECT_TRUE(json_well_formed(json)) << json;
  // metadata, spans, instants, and flow records are all present
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);  // flow step
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);  // flow end
  EXPECT_NE(json.find("test.main"), std::string::npos);
  EXPECT_NE(json.find("\"cycles\":99"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"fused\""), std::string::npos);
  // the escaped span name survives round-trip intact
  EXPECT_NE(json.find("test.json \\\"quoted\\\\name"), std::string::npos);
}

#endif  // DECIMATE_TRACE_ENABLED

}  // namespace
}  // namespace decimate
