// Tests for the hardware area/pipeline models (E8/E11) and the training
// substitute experiment (E13), plus the work splitter.

#include <gtest/gtest.h>

#include "hw/energy.hpp"
#include "hw/xfu_area.hpp"
#include "kernels/launch.hpp"
#include "kernels/work_split.hpp"
#include "nn/prune.hpp"
#include "train/trainer.hpp"

namespace decimate {
namespace {

TEST(XfuArea, OverheadNearFivePercent) {
  const XfuAreaModel model;
  EXPECT_GT(model.xfu_kge(), 1.5);
  EXPECT_LT(model.xfu_kge(), 4.0);
  EXPECT_NEAR(model.overhead_fraction(), 0.05, 0.01);  // paper: 5.0%
}

TEST(XfuArea, EveryBlockContributes) {
  const XfuAreaModel model;
  double sum = 0.0;
  for (const auto& b : model.blocks()) {
    EXPECT_GT(b.kge, 0.0) << b.name;
    EXPECT_FALSE(b.note.empty()) << b.name;
    sum += b.kge;
  }
  EXPECT_DOUBLE_EQ(sum, model.xfu_kge());
}

TEST(XfuPipeline, ForwardingRemovesBubbles) {
  const XfuPipelineModel fwd{.forwarding = true};
  const XfuPipelineModel no_fwd{.forwarding = false};
  EXPECT_EQ(fwd.back_to_back_cycles(8), 8u);
  EXPECT_EQ(no_fwd.back_to_back_cycles(8), 15u);
  EXPECT_EQ(no_fwd.back_to_back_cycles(1), 1u);
  EXPECT_EQ(no_fwd.back_to_back_cycles(0), 0u);
}

TEST(WorkSplit, ConvRowChunksWhenRowsAbound) {
  const auto work = split_conv_work(/*oy=*/32, /*ox_pairs=*/4, /*k=*/64, 8);
  ASSERT_EQ(work.size(), 8u);
  int covered = 0;
  for (const auto& w : work) {
    EXPECT_EQ(w.xp_s, 0);
    EXPECT_EQ(w.xp_e, 4);
    EXPECT_EQ(w.k_s, 0);
    EXPECT_EQ(w.k_e, 64);
    covered += w.oy_e - w.oy_s;
  }
  EXPECT_EQ(covered, 32);
}

TEST(WorkSplit, ConvStripsWhenRowsScarce) {
  // 4 rows over 8 cores: each row split into two pair-strips.
  const auto work = split_conv_work(4, 2, 16, 8);
  int cells = 0;
  for (const auto& w : work) {
    if (w.empty()) continue;
    cells += (w.oy_e - w.oy_s) * (w.xp_e - w.xp_s);
  }
  EXPECT_EQ(cells, 4 * 2);  // full coverage, disjoint by construction
  // every core has at most one row
  for (const auto& w : work) {
    EXPECT_LE(w.oy_e - w.oy_s, 1);
  }
}

TEST(WorkSplit, FcGrainAlignment) {
  const auto work = split_fc_work(/*tokens=*/1, /*k=*/100, 8, /*grain=*/2);
  int covered = 0;
  for (const auto& w : work) {
    EXPECT_EQ(w.k_s % 2, 0);
    EXPECT_EQ((w.k_e - w.k_s) % 2, 0);
    covered += w.k_e - w.k_s;
  }
  EXPECT_EQ(covered, 100);
}

TEST(WorkSplit, FcTokenChunks) {
  const auto work = split_fc_work(196, 384, 8, 2);
  int covered = 0;
  for (const auto& w : work) covered += (w.tok_e - w.tok_s);
  EXPECT_EQ(covered, 196);
}

TEST(Energy, OpClassesAreOrdered) {
  const EnergyModel em;
  EXPECT_LT(em.op_pj(Opcode::kAdd), em.op_pj(Opcode::kMul));
  EXPECT_LT(em.op_pj(Opcode::kMul), em.op_pj(Opcode::kLw));
  EXPECT_GT(em.op_pj(Opcode::kXdec), em.op_pj(Opcode::kLw));  // load+unpack
  EXPECT_GT(em.op_pj(Opcode::kDiv), em.op_pj(Opcode::kMul));
}

TEST(Energy, SparseKernelUsesLessEnergyThanDense) {
  const ConvGeom g{.ix = 8, .iy = 8, .c = 64, .k = 16, .fx = 3, .fy = 3,
                   .stride = 1, .pad = 1};
  Rng rng(4);
  const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
  Tensor32 bias({g.k}, 0);
  const EnergyModel em;
  Cluster c1{ClusterConfig{}};
  KernelLauncher l1(c1);
  Tensor8 dense_w = Tensor8::random({g.k, g.fsz()}, rng);
  const auto dense = l1.conv(KernelKind::kConvDense1x2, g, Requant{1, 8},
                             input, &dense_w, nullptr, bias);
  Cluster c2{ClusterConfig{}};
  KernelLauncher l2(c2);
  Tensor8 sw = Tensor8::random({g.k, g.fsz()}, rng);
  nm_prune(sw.flat(), g.k, g.fsz(), 1, 16);
  const NmPacked packed =
      nm_pack(sw.flat(), g.k, g.fsz(), 16, NmLayout::kConvIsaDup);
  const auto sparse = l2.conv(KernelKind::kConvSparseIsa, g, Requant{1, 8},
                              input, nullptr, &packed, bias);
  const double e_dense = em.kernel_energy(dense.result).total_nj();
  const double e_sparse = em.kernel_energy(sparse.result).total_nj();
  EXPECT_LT(e_sparse, e_dense / 2.0);  // 1:16 skips ~94% of the MACs
  // DMA side: sparse weights move far fewer bytes
  EXPECT_LT(em.dma_nj(0, nm_bytes(g.k, g.fsz(), 16, true)),
            em.dma_nj(0, dense_bytes(g.k, g.fsz())) / 4.0);
}

TEST(Train, SynthDatasetIsLearnable) {
  Rng rng(5);
  const SynthDataset train_set = SynthDataset::make(2000, 32, 10, 0.9, rng);
  const SynthDataset test_set = SynthDataset::make(300, 32, 10, 0.9, rng);
  MlpConfig cfg;
  cfg.epochs = 10;
  Mlp mlp(cfg);
  mlp.train(train_set);
  EXPECT_GT(mlp.accuracy(test_set), 0.8);  // well above 10% chance
}

TEST(Train, ProjectedSgdKeepsPattern) {
  Rng rng(6);
  const SynthDataset train_set = SynthDataset::make(500, 32, 10, 0.9, rng);
  MlpConfig cfg;
  cfg.epochs = 3;
  cfg.nm_m = 8;
  Mlp mlp(cfg);
  mlp.train(train_set);
  const Graph g = mlp.to_int8_graph(0.05f);
  // fc1 weights must still be 1:8 after training + quantization
  const Node& fc1 = g.node(1);
  EXPECT_TRUE(is_nm_sparse(fc1.weights.flat(), cfg.hidden, cfg.in, 1, 8));
}

TEST(Train, SparsityDegradesAccuracyGently) {
  Rng rng(7);
  const SynthDataset train_set = SynthDataset::make(1500, 32, 10, 2.0, rng);
  const SynthDataset test_set = SynthDataset::make(300, 32, 10, 2.0, rng);
  MlpConfig dense_cfg;
  dense_cfg.epochs = 20;
  Mlp dense(dense_cfg);
  dense.train(train_set);
  MlpConfig sparse4 = dense_cfg;
  sparse4.nm_m = 4;
  Mlp sp4(sparse4);
  sp4.train(train_set);
  MlpConfig sparse16 = dense_cfg;
  sparse16.nm_m = 16;
  Mlp sp16(sparse16);
  sp16.train(train_set);
  const double d = dense.accuracy(test_set);
  const double a4 = sp4.accuracy(test_set);
  const double a16 = sp16.accuracy(test_set);
  EXPECT_GT(a4, d - 0.08);   // 1:4 is nearly free (paper: no accuracy loss)
  EXPECT_GT(a16, d - 0.30);  // 1:16 degrades but stays far above chance
  EXPECT_GT(a16, 0.5);
}

}  // namespace
}  // namespace decimate
