// Randomized coverage: encoding round-trip fuzzing over random operand
// fields, ISS determinism across repeated runs, mixed per-stage sparsity
// deployment, and randomized kernel-vs-reference geometry sampling.

#include <gtest/gtest.h>

#include "compiler/schedule.hpp"
#include "isa/encoding.hpp"
#include "models/models.hpp"
#include "nn/prune.hpp"
#include "testutil.hpp"

namespace decimate {
namespace {

TEST(EncodingFuzz, RandomOperandsRoundTrip) {
  Rng r(1234);
  const Opcode simple_r[] = {Opcode::kAdd, Opcode::kSub, Opcode::kMul,
                             Opcode::kPMax, Opcode::kLbRr, Opcode::kPvSdotspB};
  const Opcode imm_ops[] = {Opcode::kAddi, Opcode::kAndi, Opcode::kLw,
                            Opcode::kLbu, Opcode::kLwPi, Opcode::kLhuPi};
  for (int trial = 0; trial < 500; ++trial) {
    Instr in;
    if (trial % 2 == 0) {
      in.op = simple_r[static_cast<size_t>(r.uniform_int(0, 5))];
      in.rd = static_cast<uint8_t>(r.uniform_int(0, 31));
      in.rs1 = static_cast<uint8_t>(r.uniform_int(0, 31));
      in.rs2 = static_cast<uint8_t>(r.uniform_int(0, 31));
      if (in.op == Opcode::kPMax) in.rd = static_cast<uint8_t>(r.uniform_int(1, 31));
    } else {
      in.op = imm_ops[static_cast<size_t>(r.uniform_int(0, 5))];
      in.rd = static_cast<uint8_t>(r.uniform_int(0, 31));
      in.rs1 = static_cast<uint8_t>(r.uniform_int(0, 31));
      in.imm = r.uniform_int(-2048, 2047);
    }
    const int pc = r.uniform_int(0, 1000);
    const Instr out = decode(encode(in, pc), pc);
    ASSERT_EQ(out.op, in.op);
    ASSERT_EQ(out.rd, in.rd);
    ASSERT_EQ(out.rs1, in.rs1);
    ASSERT_EQ(out.rs2, in.rs2);
    ASSERT_EQ(out.imm, in.imm);
  }
}

TEST(EncodingFuzz, BranchOffsetsRoundTripAcrossRange) {
  Rng r(77);
  for (int trial = 0; trial < 300; ++trial) {
    Instr in;
    in.op = (trial % 2) ? Opcode::kBne : Opcode::kBlt;
    in.rs1 = static_cast<uint8_t>(r.uniform_int(0, 31));
    in.rs2 = static_cast<uint8_t>(r.uniform_int(0, 31));
    const int pc = r.uniform_int(600, 1400);
    in.imm = pc + r.uniform_int(-512, 511);  // target within B-range
    const Instr out = decode(encode(in, pc), pc);
    ASSERT_EQ(out.imm, in.imm) << "pc=" << pc;
  }
}

TEST(IssFuzz, DeterministicAcrossRuns) {
  const ConvGeom g{.ix = 8, .iy = 8, .c = 32, .k = 8, .fx = 3, .fy = 3,
                   .stride = 1, .pad = 1};
  Rng rng(9);
  const Tensor8 input = Tensor8::random({8, 8, 32}, rng);
  Tensor8 w = test::random_sparse_weights(8, g.fsz(), 8, rng);
  const NmPacked packed = nm_pack(w.flat(), 8, g.fsz(), 8, NmLayout::kSw);
  const Tensor32 bias = test::random_bias(8, rng);
  uint64_t cycles0 = 0;
  for (int run = 0; run < 3; ++run) {
    test::TestRig rig;
    const KernelRun kr = rig.launcher->conv(KernelKind::kConvSparseSw, g,
                                            test::test_requant(), input,
                                            nullptr, &packed, bias);
    if (run == 0) {
      cycles0 = kr.result.wall_cycles;
    } else {
      EXPECT_EQ(kr.result.wall_cycles, cycles0);
    }
  }
}

TEST(IssFuzz, RandomConvGeometriesMatchReference) {
  Rng r(31337);
  test::TestRig rig;
  int tested = 0;
  for (int trial = 0; trial < 40 && tested < 12; ++trial) {
    ConvGeom g;
    g.c = 4 * r.uniform_int(1, 16);
    g.k = r.uniform_int(1, 24);
    g.fx = g.fy = 1 + 2 * r.uniform_int(0, 2);  // 1/3/5
    g.stride = r.uniform_int(1, 2);
    g.pad = r.uniform_int(0, g.fx / 2);
    g.ix = g.iy = 2 * r.uniform_int(2, 6) * g.stride;
    if (g.ix + 2 * g.pad < g.fx || g.ox() % 2 != 0 || g.ox() < 2) continue;
    const int m = (trial % 2) ? 8 : 16;
    if (g.fsz() % m != 0) continue;
    ++tested;
    Rng wr(static_cast<uint64_t>(trial));
    const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, wr);
    Tensor8 w = test::random_sparse_weights(g.k, g.fsz(), m, wr);
    const Tensor32 bias = test::random_bias(g.k, wr);
    const Tensor8 expected =
        conv2d_s8(input, w, bias, g, test::test_requant());
    const NmPacked packed =
        nm_pack(w.flat(), g.k, g.fsz(), m, NmLayout::kConvIsaDup);
    const KernelRun kr =
        rig.launcher->conv(KernelKind::kConvSparseIsa, g, test::test_requant(),
                           input, nullptr, &packed, bias);
    ASSERT_TRUE(kr.output == expected)
        << "geom c=" << g.c << " k=" << g.k << " f=" << g.fx
        << " s=" << g.stride << " p=" << g.pad << " ix=" << g.ix
        << " m=" << m;
  }
  EXPECT_GE(tested, 8);
}

TEST(MixedSparsity, PerStagePatternsDeployIndependently) {
  Resnet18Options ropt;
  ropt.input_hw = 16;
  ropt.per_stage_m = {0, 4, 8, 16};
  const Graph g = build_resnet18(ropt);
  // pattern recognition sees each stage's M
  int seen[17] = {};
  for (const auto& n : g.nodes()) {
    if (n.op != OpType::kConv2d || n.conv.fx != 3 || n.name == "stem") {
      continue;
    }
    const int m = detect_one_to_m(n.weights.flat(), n.conv.k, n.conv.fsz());
    ++seen[m];
  }
  EXPECT_EQ(seen[0], 4);   // stage 1 dense
  EXPECT_EQ(seen[4], 4);
  EXPECT_EQ(seen[8], 4);
  EXPECT_EQ(seen[16], 4);
  // and the executor runs it end to end
  Rng rng(3);
  const Tensor8 input = Tensor8::random({16, 16, 4}, rng);
  CompileOptions copt;
  copt.enable_isa = true;
  ScheduleExecutor exec(copt);
  const NetworkRun run = exec.run(g, input);
  EXPECT_GT(run.total_cycles, 0u);
  // mixed memory sits between uniform dense and uniform 1:16
  Resnet18Options dense_opt;
  dense_opt.input_hw = 16;
  ScheduleExecutor exec2(copt);
  const NetworkRun dense = exec2.run(build_resnet18(dense_opt), input);
  Resnet18Options s16;
  s16.input_hw = 16;
  s16.sparsity_m = 16;
  ScheduleExecutor exec3(copt);
  const NetworkRun sparse = exec3.run(build_resnet18(s16), input);
  EXPECT_LT(run.weight_bytes, dense.weight_bytes);
  EXPECT_GT(run.weight_bytes, sparse.weight_bytes);
  EXPECT_LT(run.total_cycles, dense.total_cycles);
  EXPECT_GT(run.total_cycles, sparse.total_cycles);
}

}  // namespace
}  // namespace decimate
