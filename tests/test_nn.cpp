#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "nn/nm_format.hpp"
#include "nn/prune.hpp"
#include "nn/quant.hpp"
#include "nn/ref_ops.hpp"

namespace decimate {
namespace {

TEST(Tensor, ShapeAndIndexing) {
  Tensor8 t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  t.at({1, 2, 3}) = 7;
  EXPECT_EQ(t.at({1, 2, 3}), 7);
  EXPECT_EQ(t[23], 7);
  EXPECT_THROW(t.at({2, 0, 0}), Error);
  EXPECT_THROW(t.at({0, 0}), Error);
  EXPECT_THROW(Tensor8({0, 3}), Error);
}

TEST(Quant, RequantMatchesKernelSequence) {
  const Requant rq{5, 7};
  // t = (acc * 5) >> 7, clipped to int8
  EXPECT_EQ(rq.apply(128), 5);
  EXPECT_EQ(rq.apply(-128), -5);
  EXPECT_EQ(rq.apply(1 << 20), 127);
  EXPECT_EQ(rq.apply(-(1 << 20)), -128);
  EXPECT_EQ(rq.apply(0), 0);
}

TEST(Quant, MakeRequantApproximatesScale) {
  const double scale = 1.0 / 300.0;
  const Requant rq = make_requant(scale, /*max_abs_acc=*/100000);
  // check the fixed-point approximation on a mid-range accumulator
  const int32_t acc = 30000;
  const double ideal = acc * scale;
  const double got = rq.apply(acc);
  EXPECT_NEAR(got, ideal, 2.0);
  // multiplier respects the overflow cap
  EXPECT_LE(static_cast<int64_t>(rq.mult) * 100000, (1ll << 31) - 1);
}

TEST(Quant, QuantizeSymmetricRoundtrip) {
  std::vector<float> x = {0.5f, -1.0f, 0.25f, 0.0f};
  std::vector<int8_t> q(4);
  const float scale = quantize_symmetric(x, q);
  EXPECT_EQ(q[1], -127);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(q[i] * scale, x[i], scale);
  }
}

TEST(Quant, IsqrtMatchesFloor) {
  for (uint32_t v : {0u, 1u, 2u, 3u, 4u, 15u, 16u, 17u, 1024u, 999999u,
                     4294967295u}) {
    const auto r = isqrt_u32(v);
    EXPECT_LE(static_cast<uint64_t>(r) * r, v);
    EXPECT_GT(static_cast<uint64_t>(r + 1) * (r + 1), v);
  }
}

TEST(Quant, SoftmaxRowProducesDistribution) {
  const auto lut = build_exp_lut(0.1f);
  std::vector<int8_t> x = {10, 20, 30, 40, -50};
  std::vector<int8_t> out(5);
  softmax_s8_row(x, lut, out);
  // monotone in the logits, max close to the winner
  EXPECT_GE(out[3], out[2]);
  EXPECT_GE(out[2], out[1]);
  EXPECT_GE(out[1], out[0]);
  EXPECT_GE(out[0], out[4]);
  int32_t sum = 0;
  for (int8_t v : out) sum += v;
  EXPECT_GT(sum, 60);   // probabilities roughly sum to 127
  EXPECT_LE(sum, 127 + 5);
}

TEST(Quant, LayernormRowCentersAndScales) {
  std::vector<int8_t> x(64);
  for (int i = 0; i < 64; ++i) x[i] = static_cast<int8_t>((i % 16) * 4 - 30);
  std::vector<int8_t> gamma(64, 64);  // gamma = 1.0 in Q6
  std::vector<int8_t> beta(64, 0);
  std::vector<int8_t> out(64);
  layernorm_s8_row(x, gamma, beta, out);
  int32_t sum = 0;
  for (int8_t v : out) sum += v;
  // approximately zero-mean
  EXPECT_LT(std::abs(sum), 64 * 3);
  // normalized magnitude ~16 per unit std
  int32_t amax = 0;
  for (int8_t v : out) amax = std::max<int32_t>(amax, std::abs(v));
  EXPECT_GT(amax, 8);
  EXPECT_LT(amax, 64);
}

TEST(Prune, MagnitudeKeepsLargestPerBlock) {
  std::vector<int8_t> w = {1, -9, 3, 2,   5, 4, -3, 2};
  nm_prune(std::span<int8_t>(w), 1, 8, 1, 4);
  EXPECT_EQ(w[1], -9);
  EXPECT_EQ(w[0], 0);
  EXPECT_EQ(w[2], 0);
  EXPECT_EQ(w[3], 0);
  EXPECT_EQ(w[4], 5);
  EXPECT_EQ(w[5], 0);
}

TEST(Prune, TwoToFourKeepsTwo) {
  std::vector<int8_t> w = {1, -9, 3, 2};
  nm_prune(std::span<int8_t>(w), 1, 4, 2, 4);
  EXPECT_EQ(w[1], -9);
  EXPECT_EQ(w[2], 3);
  EXPECT_EQ(w[0], 0);
  EXPECT_EQ(w[3], 0);
}

TEST(Prune, DetectOneToM) {
  Rng rng(7);
  for (int m : {4, 8, 16}) {
    Tensor8 w = Tensor8::random({8, 64}, rng);
    nm_prune(w.flat(), 8, 64, 1, m);
    EXPECT_TRUE(is_nm_sparse(w.flat(), 8, 64, 1, m));
    EXPECT_EQ(detect_one_to_m(w.flat(), 8, 64), m) << "m=" << m;
  }
  Tensor8 dense = Tensor8::random({8, 64}, rng);
  EXPECT_EQ(detect_one_to_m(dense.flat(), 8, 64), 0);
}

TEST(Prune, SparsityFraction) {
  std::vector<int8_t> w(100, 0);
  for (int i = 0; i < 25; ++i) w[static_cast<size_t>(i)] = 1;
  EXPECT_DOUBLE_EQ(sparsity(w), 0.75);
}

class NmFormatRoundtrip
    : public ::testing::TestWithParam<std::tuple<int, NmLayout, int, int>> {};

TEST_P(NmFormatRoundtrip, PackUnpackIsIdentity) {
  const auto [m, layout, rows, cols] = GetParam();
  if (cols % m != 0) GTEST_SKIP();
  Rng rng(static_cast<uint64_t>(m * 1000 + rows));
  Tensor8 w = Tensor8::random({rows, cols}, rng);
  nm_prune(w.flat(), rows, cols, 1, m);
  const NmPacked packed = nm_pack(w.flat(), rows, cols, m, layout);
  const Tensor8 dense = packed.to_dense();
  // Equality up to zero-value NZ entries (a pruned block whose survivor is
  // itself zero packs as value 0 at offset 0 — both reconstruct to zeros).
  ASSERT_EQ(dense.shape(), w.shape());
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_EQ(dense[i], w[i]) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Layouts, NmFormatRoundtrip,
    ::testing::Combine(::testing::Values(4, 8, 16),
                       ::testing::Values(NmLayout::kSw, NmLayout::kConvIsaDup,
                                         NmLayout::kFcIsaInterleaved),
                       ::testing::Values(2, 8, 10),
                       ::testing::Values(16, 32, 144)));

TEST(NmFormat, PaperMemorySavings) {
  // Sec. 4: 1:4 -> 68.75%, 1:8 -> 81.25%, 1:16 -> 90.62% (SW layout);
  // duplicated offsets: 62.5%, 75%, 87.5% (Sec. 4.1.3).
  const int rows = 64, cols = 1024;
  const auto dense = static_cast<double>(dense_bytes(rows, cols));
  EXPECT_NEAR(1.0 - nm_bytes(rows, cols, 4, false) / dense, 0.6875, 1e-3);
  EXPECT_NEAR(1.0 - nm_bytes(rows, cols, 8, false) / dense, 0.8125, 1e-3);
  EXPECT_NEAR(1.0 - nm_bytes(rows, cols, 16, false) / dense, 0.90625, 1e-3);
  EXPECT_NEAR(1.0 - nm_bytes(rows, cols, 4, true) / dense, 0.625, 1e-3);
  EXPECT_NEAR(1.0 - nm_bytes(rows, cols, 8, true) / dense, 0.75, 1e-3);
  EXPECT_NEAR(1.0 - nm_bytes(rows, cols, 16, true) / dense, 0.875, 1e-3);
}

TEST(NmFormat, CsrWorseThanNmAtSameSparsity) {
  // Paper Sec. 4: CSR yields <25% compression at 75% sparsity vs 68.75%.
  const int rows = 256, cols = 1152;
  const int64_t nnz = static_cast<int64_t>(rows) * cols / 4;
  const auto dense = static_cast<double>(dense_bytes(rows, cols));
  const double csr_saving = 1.0 - csr_bytes(rows, nnz) / dense;
  EXPECT_LT(csr_saving, 0.25);
  EXPECT_GT(1.0 - nm_bytes(rows, cols, 4, false) / dense, 0.65);
}

TEST(NmFormat, PaddedRowsAreZeroFilled) {
  // 18 NZ per row (C=32, 3x3, M=16) pads to 20.
  Rng rng(3);
  Tensor8 w = Tensor8::random({4, 288}, rng);
  nm_prune(w.flat(), 4, 288, 1, 16);
  const NmPacked p = nm_pack(w.flat(), 4, 288, 16, NmLayout::kSw);
  EXPECT_EQ(p.nz_per_row, 18);
  EXPECT_EQ(p.nz_padded, 20);
  EXPECT_EQ(p.values_row_bytes, 20);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(p.values[static_cast<size_t>(r) * 20 + 18], 0);
    EXPECT_EQ(p.values[static_cast<size_t>(r) * 20 + 19], 0);
  }
  EXPECT_EQ(p.gather_slack_bytes(), 32);
}

TEST(NmFormat, RejectsNonSparseMatrix) {
  Rng rng(4);
  Tensor8 w = Tensor8::random({4, 64}, rng);
  EXPECT_THROW(nm_pack(w.flat(), 4, 64, 8, NmLayout::kSw), Error);
}

TEST(RefOps, ConvMatchesManualSmallCase) {
  // 1x1 input, 1x1 filter: out = requant(bias + in*w)
  ConvGeom g{.ix = 2, .iy = 2, .c = 4, .k = 2, .fx = 1, .fy = 1};
  Tensor8 in({2, 2, 4});
  for (int64_t i = 0; i < in.numel(); ++i) in[i] = static_cast<int8_t>(i + 1);
  Tensor8 w({2, 4});
  for (int64_t i = 0; i < w.numel(); ++i) w[i] = static_cast<int8_t>(i % 3);
  Tensor32 bias({2});
  bias[0] = 10;
  bias[1] = -10;
  const Requant rq{1, 0};
  const Tensor8 out = conv2d_s8(in, w, bias, g, rq);
  // pixel (0,0): in = {1,2,3,4}; w0 = {0,1,2,0} -> 2+6 = 8; +10 = 18
  EXPECT_EQ(out.at({0, 0, 0}), 18);
  // w1 = {1,2,0,1} -> 1+4+4 = 9; -10 = -1
  EXPECT_EQ(out.at({0, 0, 1}), -1);
}

TEST(RefOps, ConvPaddingZeroes) {
  ConvGeom g{.ix = 4, .iy = 4, .c = 4, .k = 4, .fx = 3, .fy = 3, .stride = 1,
             .pad = 1};
  Rng rng(11);
  Tensor8 in = Tensor8::random({4, 4, 4}, rng);
  Tensor8 w({4, g.fsz()}, 0);
  // filter that only reads the top-left tap: corner output sees padding
  for (int k = 0; k < 4; ++k) w.at({k, 0}) = 1;
  Tensor32 bias({4}, 0);
  const Tensor8 out = conv2d_s8(in, w, bias, g, Requant{1, 0});
  EXPECT_EQ(out.at({0, 0, 0}), 0);           // top-left tap is padding
  EXPECT_EQ(out.at({1, 1, 0}), in.at({0, 0, 0}));
}

TEST(RefOps, FcMatchesManual) {
  Tensor8 in({1, 4});
  in[0] = 1; in[1] = 2; in[2] = 3; in[3] = 4;
  Tensor8 w({2, 4});
  for (int i = 0; i < 4; ++i) {
    w.at({0, i}) = 1;
    w.at({1, i}) = static_cast<int8_t>(-i);
  }
  Tensor32 bias({2});
  bias[0] = 0;
  bias[1] = 100;
  const Tensor8 out = fc_s8(in, w, bias, Requant{1, 0});
  EXPECT_EQ(out.at({0, 0}), 10);
  EXPECT_EQ(out.at({0, 1}), 100 - (0 + 2 + 6 + 12));
}

TEST(RefOps, ReluAddPoolLut) {
  Tensor8 x({2, 2, 2});
  x[0] = -5; x[1] = 5; x[2] = -1; x[3] = 0; x[4] = 7; x[5] = -7; x[6] = 3; x[7] = -3;
  const Tensor8 r = relu_s8(x);
  EXPECT_EQ(r[0], 0);
  EXPECT_EQ(r[1], 5);
  const Tensor8 mp = maxpool2x2_s8(x);
  EXPECT_EQ(mp.shape(), (std::vector<int>{1, 1, 2}));
  EXPECT_EQ(mp.at({0, 0, 0}), 7);
  EXPECT_EQ(mp.at({0, 0, 1}), 5);
  const Tensor8 ap = global_avgpool_s8(x, Requant{1, 2});  // sum >> 2
  EXPECT_EQ(ap[0], (-5 + -1 + 7 + 3) >> 2);
  const Tensor8 s = add_s8(x, Requant{1, 0}, x, Requant{1, 0});
  EXPECT_EQ(s[1], 10);
  EXPECT_EQ(s[0], -10);
  std::vector<int8_t> lut(256);
  for (int i = 0; i < 256; ++i) {
    lut[static_cast<size_t>(i)] = static_cast<int8_t>(i / 2);
  }
  const Tensor8 l = lut_s8(x, lut);
  EXPECT_EQ(l[1], lut[5]);
  EXPECT_EQ(l[0], lut[static_cast<uint8_t>(-5)]);
}

TEST(RefOps, GeluLutIsMonotoneNonDecreasingOnPositives) {
  const auto lut = build_gelu_lut(0.05f, 0.05f);
  for (int q = 0; q < 126; ++q) {
    EXPECT_LE(lut[static_cast<size_t>(q)], lut[static_cast<size_t>(q + 1)]);
  }
  EXPECT_EQ(lut[0], 0);  // gelu(0) = 0
}

}  // namespace
}  // namespace decimate
