// Plan-artifact registry tests: serde primitives, serialize -> load
// round-trips that must be bit-exact across every execution path
// (ExecutionEngine::run, pipelined run_batch, MultiClusterEngine shard),
// the admission gate (truncation, bit flips, version skew, forged
// fingerprints), concurrent loads, graph ownership of loaded plans, and
// the PlanStore registry tier's zero-compile / zero-ISS cold start.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <unistd.h>

#include "artifact/plan_io.hpp"
#include "artifact/registry.hpp"
#include "common/serde.hpp"
#include "compiler/fingerprint.hpp"
#include "exec/compile.hpp"
#include "exec/engine.hpp"
#include "models/models.hpp"
#include "serve/plan_store.hpp"
#include "shard/multi_cluster_engine.hpp"
#include "trace/metrics.hpp"

namespace decimate {
namespace {

namespace fs = std::filesystem;

CompileOptions isa_options() {
  CompileOptions opt;
  opt.enable_isa = true;
  return opt;
}

/// One latency cache for the whole binary: tile geometries repeat across
/// tests, so every unique tile is ISS-measured once per test run.
std::shared_ptr<TileLatencyCache> shared_test_cache() {
  static auto cache = std::make_shared<TileLatencyCache>();
  return cache;
}

Graph scaled_resnet18(int m) {
  Resnet18Options opt;
  opt.sparsity_m = m;
  opt.input_hw = 16;
  return build_resnet18(opt);
}

Graph small_ffn() { return build_ffn_block(32, 64, 128, 8, 11); }

Tensor8 random_input(const Graph& g, uint64_t seed) {
  Rng rng(seed);
  return Tensor8::random(g.node(0).out_shape, rng);
}

CompiledPlan compile_plan(const Graph& g, const CompileOptions& opt) {
  Compiler compiler(opt, shared_test_cache());
  return compiler.compile(g);
}

/// Serialize + load through the byte path (no files).
CompiledPlan round_trip(const CompiledPlan& plan) {
  const auto bytes = artifact::serialize_plan(plan);
  return artifact::load_plan_from_bytes(bytes, "round-trip");
}

/// A scratch directory that cleans up after itself.
struct TempDir {
  TempDir() {
    path = (fs::temp_directory_path() /
            ("decimate_artifact_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter()++)))
               .string();
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static std::atomic<int>& counter() {
    static std::atomic<int> c{0};
    return c;
  }
  std::string path;
};

// ---------------------------------------------------------------------------
// serde primitives (shared with the latency-cache warm files)
// ---------------------------------------------------------------------------

TEST(Serde, RoundTripsEveryFieldWidth) {
  serde::Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefull);
  w.i32(-7);
  w.i64(-(1ll << 40));
  w.f64(-3.25);
  w.boolean(true);
  w.str("plan");
  w.align(16);
  const size_t aligned = w.pos();
  w.u8(1);

  serde::Reader r(w.buffer(), "test");
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i32(), -7);
  EXPECT_EQ(r.i64(), -(1ll << 40));
  EXPECT_EQ(r.f64(), -3.25);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.str(), "plan");
  r.skip_align(16);
  EXPECT_EQ(r.pos(), aligned);
  EXPECT_EQ(r.u8(), 1);
  EXPECT_TRUE(r.done());
}

TEST(Serde, ReaderThrowsOnTruncation) {
  serde::Writer w;
  w.u32(42);
  serde::Reader r(w.buffer(), "tiny");
  r.u16();
  EXPECT_THROW(r.u64(), Error);  // only 2 bytes left
}

TEST(Serde, Crc32MatchesKnownVector) {
  // IEEE CRC-32 of "123456789" is the classic check value
  const char* s = "123456789";
  EXPECT_EQ(serde::crc32({reinterpret_cast<const uint8_t*>(s), 9}),
            0xcbf43926u);
  // chaining a split buffer equals one pass
  const auto span = std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(s), 9);
  EXPECT_EQ(serde::crc32(span.subspan(4), serde::crc32(span.first(4))),
            0xcbf43926u);
}

// ---------------------------------------------------------------------------
// round-trip bit-exactness
// ---------------------------------------------------------------------------

TEST(PlanArtifact, ResnetSweepRoundTripsBitExact) {
  for (const int m : {0, 2, 4, 8, 16}) {
    const Graph g = scaled_resnet18(m);
    const CompiledPlan plan = compile_plan(g, isa_options());
    const CompiledPlan loaded = round_trip(plan);

    EXPECT_EQ(loaded.total_cycles, plan.total_cycles) << "m=" << m;
    EXPECT_EQ(loaded.total_macs, plan.total_macs);
    EXPECT_EQ(loaded.weight_bytes, plan.weight_bytes);
    ASSERT_EQ(loaded.steps.size(), plan.steps.size());
    for (size_t i = 0; i < plan.steps.size(); ++i) {
      EXPECT_EQ(loaded.steps[i].report.total_cycles,
                plan.steps[i].report.total_cycles);
      EXPECT_EQ(loaded.steps[i].report.impl, plan.steps[i].report.impl);
    }

    const Tensor8 input = random_input(g, 100 + static_cast<uint64_t>(m));
    ExecutionEngine engine;
    const NetworkRun fresh = engine.run(plan, input);
    const NetworkRun reloaded = engine.run(loaded, input);
    EXPECT_EQ(reloaded.output, fresh.output) << "m=" << m;
    EXPECT_EQ(reloaded.total_cycles, fresh.total_cycles);
  }
}

TEST(PlanArtifact, FfnBatchRunRoundTripsBitExact) {
  const Graph g = small_ffn();
  CompileOptions opt = isa_options();
  opt.batch = 4;
  const CompiledPlan plan = compile_plan(g, opt);
  const CompiledPlan loaded = round_trip(plan);

  std::vector<Tensor8> inputs;
  for (int i = 0; i < 4; ++i) {
    inputs.push_back(random_input(g, 200 + static_cast<uint64_t>(i)));
  }
  ExecutionEngine engine;
  const BatchRun fresh = engine.run_batch(plan, inputs);
  const BatchRun reloaded = engine.run_batch(loaded, inputs);
  EXPECT_EQ(reloaded.batch_cycles, fresh.batch_cycles);
  ASSERT_EQ(reloaded.runs.size(), fresh.runs.size());
  for (size_t i = 0; i < fresh.runs.size(); ++i) {
    EXPECT_EQ(reloaded.runs[i].output, fresh.runs[i].output);
  }
}

TEST(PlanArtifact, ShardedRunRoundTripsBitExactAndIssFree) {
  const Graph g = small_ffn();
  CompileOptions opt = isa_options();
  opt.num_clusters = 2;
  CompiledPlan plan = compile_plan(g, opt);

  // shard-plan BEFORE serializing so the kFcC measurements (if the
  // planner takes that path) land in the latency section too
  MultiClusterEngine publisher(2);
  const Tensor8 input = random_input(g, 7);
  const ShardedRun fresh = publisher.run(plan, input);

  const auto bytes = artifact::serialize_plan(plan);
  auto cold_cache = std::make_shared<TileLatencyCache>();
  const CompiledPlan loaded =
      artifact::load_plan_from_bytes(bytes, "shard-test", cold_cache);

  MultiClusterEngine consumer(2);
  const ShardedRun reloaded = consumer.run(loaded, input);
  EXPECT_EQ(reloaded.run.output, fresh.run.output);
  EXPECT_EQ(reloaded.run.total_cycles, fresh.run.total_cycles);
  // zero ISS in the consumer: every tile the shard planner needed was
  // embedded in the artifact's latency section (misses == simulations)
  EXPECT_EQ(cold_cache->misses(), 0u);
}

TEST(PlanArtifact, LoadedPlanOwnsItsGraph) {
  std::vector<uint8_t> bytes;
  Tensor8 input;
  NetworkRun fresh;
  {
    const Graph g = small_ffn();
    const CompiledPlan plan = compile_plan(g, isa_options());
    input = random_input(g, 5);
    fresh = ExecutionEngine().run(plan, input);
    bytes = artifact::serialize_plan(plan);
    // g and plan die here; the artifact must be self-contained
  }
  const CompiledPlan loaded =
      artifact::load_plan_from_bytes(bytes, "ownership");
  ASSERT_NE(loaded.owned_graph, nullptr);
  EXPECT_EQ(loaded.graph, loaded.owned_graph.get());
  const NetworkRun reloaded = ExecutionEngine().run(loaded, input);
  EXPECT_EQ(reloaded.output, fresh.output);
}

TEST(PlanArtifact, PayloadViewsAliasTheArtifactBytes) {
  const Graph g = small_ffn();
  const CompiledPlan plan = compile_plan(g, isa_options());
  TempDir dir;
  PlanRegistry registry(dir.path);
  const std::string path = registry.publish(plan);

  const auto file = MappedFile::open(path);
  ASSERT_NE(file, nullptr);
  const CompiledPlan loaded = artifact::load_plan(file);
  bool saw_sparse = false;
  for (const PlanStep& s : loaded.steps) {
    if (!s.has_packed) continue;
    saw_sparse = true;
    // the packed payload must be a view INTO the mapping, not a copy
    EXPECT_TRUE(s.packed.values.is_view());
    const auto* p = reinterpret_cast<const uint8_t*>(s.packed.values.data());
    EXPECT_GE(p, file->data());
    EXPECT_LT(p, file->data() + file->size());
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u);
    EXPECT_TRUE(s.host.val.is_view());
  }
  EXPECT_TRUE(saw_sparse);
}

// ---------------------------------------------------------------------------
// admission gate
// ---------------------------------------------------------------------------

struct Corruptible {
  std::vector<uint8_t> bytes;
  explicit Corruptible(const CompiledPlan& plan)
      : bytes(artifact::serialize_plan(plan)) {}
};

TEST(PlanArtifact, RejectsTruncation) {
  const Graph g = small_ffn();
  Corruptible a(compile_plan(g, isa_options()));

  auto short_bytes = a.bytes;
  short_bytes.resize(50);  // shorter than the header
  VerifyReport r = artifact::verify_artifact(short_bytes, "trunc");
  EXPECT_TRUE(r.has("artifact.magic"));
  EXPECT_FALSE(r.ok());

  auto torn = a.bytes;
  torn.resize(a.bytes.size() / 2);  // header intact, sections torn
  r = artifact::verify_artifact(torn, "torn");
  EXPECT_TRUE(r.has("artifact.bounds"));
  EXPECT_THROW(artifact::load_plan_from_bytes(torn, "torn"), VerifyError);
}

TEST(PlanArtifact, RejectsWeightSectionBitFlip) {
  const Graph g = small_ffn();
  Corruptible a(compile_plan(g, isa_options()));
  // the weight section is the last section: flip a byte near the end
  a.bytes[a.bytes.size() - 1] ^= 0x40;
  const VerifyReport r = artifact::verify_artifact(a.bytes, "flip");
  EXPECT_TRUE(r.has("artifact.crc"));
  EXPECT_THROW(artifact::load_plan_from_bytes(a.bytes, "flip"), VerifyError);
}

TEST(PlanArtifact, RejectsVersionSkew) {
  const Graph g = small_ffn();
  Corruptible a(compile_plan(g, isa_options()));
  a.bytes[4] += 1;  // format version field follows the 4-byte magic
  const VerifyReport r = artifact::verify_artifact(a.bytes, "skew");
  EXPECT_TRUE(r.has("artifact.magic"));
  EXPECT_THROW(artifact::load_plan_from_bytes(a.bytes, "skew"), VerifyError);
}

TEST(PlanArtifact, RejectsForgedFingerprint) {
  const Graph g = small_ffn();
  Corruptible a(compile_plan(g, isa_options()));
  // forge the header's plan fingerprint (offset 8, after magic+version)
  // and re-seal the header CRC so only the artifact.fingerprint
  // re-derivation can catch the lie
  a.bytes[8] ^= 0xff;
  const uint32_t crc = serde::crc32(
      std::span<const uint8_t>(a.bytes).first(artifact::kHeaderBytes - 4));
  for (size_t i = 0; i < 4; ++i) {
    a.bytes[artifact::kHeaderBytes - 4 + i] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
  EXPECT_TRUE(artifact::verify_artifact(a.bytes, "forged").ok());
  try {
    artifact::load_plan_from_bytes(a.bytes, "forged");
    FAIL() << "forged fingerprint was admitted";
  } catch (const VerifyError& e) {
    EXPECT_TRUE(e.report().has("artifact.fingerprint"));
  }
}

// ---------------------------------------------------------------------------
// registry
// ---------------------------------------------------------------------------

TEST(PlanRegistry, PublishLoadAndIndex) {
  const Graph g = small_ffn();
  const CompiledPlan plan = compile_plan(g, isa_options());
  const uint64_t fp = plan_fingerprint(g, plan.options);

  TempDir dir;
  PlanRegistry registry(dir.path);
  EXPECT_FALSE(registry.contains(fp));
  EXPECT_FALSE(registry.load(fp).has_value());

  const std::string path = registry.publish(plan);
  EXPECT_TRUE(registry.contains(fp));
  EXPECT_TRUE(fs::exists(path));
  EXPECT_TRUE(fs::exists(fs::path(dir.path) / "index.tsv"));
  // idempotent re-publish
  EXPECT_EQ(registry.publish(plan), path);

  const auto listed = registry.list();
  ASSERT_EQ(listed.size(), 1u);
  EXPECT_EQ(listed[0].plan_fingerprint, fp);
  EXPECT_GT(listed[0].weight_section_bytes, 0u);

  const auto loaded = registry.load(fp);
  ASSERT_TRUE(loaded.has_value());
  const Tensor8 input = random_input(g, 17);
  EXPECT_EQ(ExecutionEngine().run(*loaded, input).output,
            ExecutionEngine().run(plan, input).output);
}

TEST(PlanRegistry, ConcurrentLoadsAreIndependentAndBitExact) {
  const Graph g = small_ffn();
  const CompiledPlan plan = compile_plan(g, isa_options());
  const uint64_t fp = plan_fingerprint(g, plan.options);
  TempDir dir;
  PlanRegistry registry(dir.path);
  registry.publish(plan);

  const Tensor8 input = random_input(g, 23);
  const Tensor8 expect = ExecutionEngine().run(plan, input).output;

  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      const auto loaded = registry.load(fp);
      if (!loaded.has_value()) return;
      if (ExecutionEngine().run(*loaded, input).output == expect) ++ok;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ok.load(), 4);
}

// ---------------------------------------------------------------------------
// registry startup hygiene
// ---------------------------------------------------------------------------

TEST(PlanRegistry, StartupSweepsStaleTempsAndSparesLiveOnes) {
  TempDir dir;
  fs::create_directories(dir.path);
  const fs::path base(dir.path);

  // a crashed publisher's leavings: a dead-pid temp (no such /proc entry)
  // and an ancient suffix-less temp
  const fs::path dead_pid = base / "0123456789abcdef.plan.tmp.999999999";
  const fs::path ancient = base / "fedcba9876543210.plan.tmp";
  // a live writer's temp (our own pid) must survive the sweep
  const fs::path live =
      base / ("aaaaaaaaaaaaaaaa.plan.tmp." + std::to_string(::getpid()));
  // and a real artifact name is never a sweep candidate
  const fs::path plan_file = base / "bbbbbbbbbbbbbbbb.plan";
  for (const fs::path& p : {dead_pid, ancient, live, plan_file}) {
    std::ofstream(p) << "x";
  }
  fs::last_write_time(ancient,
                      fs::file_time_type::clock::now() -
                          std::chrono::minutes(5));

  auto& swept = metrics::registry().counter("artifact.stale_tmp_swept");
  const uint64_t before = swept.value();
  PlanRegistry registry(dir.path);

  EXPECT_FALSE(fs::exists(dead_pid));
  EXPECT_FALSE(fs::exists(ancient));
  EXPECT_TRUE(fs::exists(live));
  EXPECT_TRUE(fs::exists(plan_file));
  EXPECT_EQ(swept.value(), before + 2);
}

TEST(PlanRegistry, IndexSkipsTornLinesAndKeepsGoodOnes) {
  TempDir dir;
  fs::create_directories(dir.path);
  {
    std::ofstream idx(fs::path(dir.path) / "index.tsv");
    idx << "# fingerprint\tbytes\tweight_bytes\tversion\n";
    idx << "00deadbeef001122\t4096\t2048\t3\n";   // good
    idx << "00deadbee\n";                          // torn mid-write
    idx << "nothexnothexnoth\t1\t2\t3\n";         // 16 chars, not hex
    idx << "0000000000000001\t77\n";               // missing fields
    idx << "\n";                                   // blank: not an error
  }

  auto& skipped = metrics::registry().counter("artifact.index_skipped_lines");
  const uint64_t before = skipped.value();
  PlanRegistry registry(dir.path);  // tolerant parse runs at open, too
  const auto entries = registry.index_entries();

  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].fingerprint, 0x00deadbeef001122ULL);
  EXPECT_EQ(entries[0].total_bytes, 4096u);
  EXPECT_EQ(entries[0].weight_bytes, 2048u);
  EXPECT_EQ(entries[0].version, 3u);
  // three bad lines, counted by the constructor pass and the explicit one
  EXPECT_EQ(skipped.value(), before + 6);

  // a publish rewrites the index; the rebuilt file parses clean
  const Graph g = small_ffn();
  registry.publish(compile_plan(g, isa_options()));
  const uint64_t after_publish = skipped.value();
  const auto rebuilt = registry.index_entries();
  ASSERT_EQ(rebuilt.size(), 1u);
  EXPECT_EQ(skipped.value(), after_publish);
}

// ---------------------------------------------------------------------------
// PlanStore registry tier
// ---------------------------------------------------------------------------

TEST(PlanStoreRegistry, WarmRegistryColdStartIsZeroCompileZeroIss) {
  const Graph g = small_ffn();
  TempDir dir;

  // process 1: compile, serve, publish (write-through)
  {
    PlanStore store(isa_options(), shared_test_cache());
    store.attach_registry(dir.path);
    const int model = store.add_model(g);
    store.plan(model, 1);
    store.plan(model, 4);
    EXPECT_EQ(store.compiles(), 2);
    EXPECT_EQ(store.registry_loads(), 0);
  }

  // process 2 (simulated): fresh store, fresh latency cache — a warm
  // registry must serve every plan with zero compiles and zero ISS
  auto cold_cache = std::make_shared<TileLatencyCache>();
  PlanStore store(isa_options(), cold_cache);
  store.attach_registry(dir.path);
  const int model = store.add_model(g);
  const CompiledPlan& p1 = store.plan(model, 1);
  const CompiledPlan& p4 = store.plan(model, 4);
  EXPECT_EQ(store.compiles(), 0);
  EXPECT_EQ(store.registry_loads(), 2);
  EXPECT_EQ(cold_cache->misses(), 0u);  // no simulation ran

  // and the loaded plans serve bit-exactly
  const Tensor8 input = random_input(g, 31);
  Compiler reference(isa_options(), shared_test_cache());
  const CompiledPlan fresh = reference.compile(g);
  EXPECT_EQ(ExecutionEngine().run(p1, input).output,
            ExecutionEngine().run(fresh, input).output);
  EXPECT_EQ(p4.options.batch, 4);
}

TEST(PlanStoreRegistry, LoadedPlansDoNotReferenceTheStoreGraph) {
  const Graph g = small_ffn();
  TempDir dir;
  {
    PlanStore store(isa_options(), shared_test_cache());
    store.attach_registry(dir.path);
    store.plan(store.add_model(g), 1);
  }
  PlanStore store(isa_options(), shared_test_cache());
  store.attach_registry(dir.path);
  const CompiledPlan& loaded = store.plan(store.add_model(g), 1);
  ASSERT_NE(loaded.owned_graph, nullptr);
  EXPECT_EQ(loaded.graph, loaded.owned_graph.get());
  EXPECT_NE(loaded.graph, &store.graph(0));
}

}  // namespace
}  // namespace decimate
