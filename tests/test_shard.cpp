// Multi-cluster sharding tests: bit-exactness of MultiClusterEngine
// against the single-cluster ExecutionEngine on ResNet18/ViT for 1/2/4
// shards, the single-cluster degeneration invariant (critical path ==
// plan total), the kFcC partial-sum reduction path (dense and sparse),
// degenerate layers with fewer tiles than clusters, shard-count-salted
// fingerprints, and shard-plan caching.

#include <gtest/gtest.h>

#include "compiler/fingerprint.hpp"
#include "exec/compile.hpp"
#include "exec/engine.hpp"
#include "models/models.hpp"
#include "nn/prune.hpp"
#include "shard/multi_cluster_engine.hpp"

namespace decimate {
namespace {

CompileOptions isa_options(int num_clusters = 1) {
  CompileOptions opt;
  opt.enable_isa = true;
  opt.num_clusters = num_clusters;
  return opt;
}

Graph scaled_resnet18() {
  Resnet18Options opt;
  opt.sparsity_m = 8;
  opt.input_hw = 16;
  return build_resnet18(opt);
}

Graph scaled_vit() {
  VitOptions opt;
  opt.image_hw = 64;
  opt.dim = 64;
  opt.depth = 2;
  opt.heads = 2;
  opt.mlp = 256;
  opt.sparsity_m = 8;
  return build_vit(opt);
}

/// Single-FC graph: `tokens` x `c` -> `k`, optionally 1:m pruned.
Graph single_fc(int tokens, int c, int k, int m, uint64_t seed) {
  Rng rng(seed);
  Graph g({tokens, c});
  Node n;
  n.op = OpType::kFc;
  n.name = "fc";
  n.inputs = {0};
  n.fc = FcGeom{.tokens = tokens, .c = c, .k = k};
  n.weights = Tensor8::random({k, c}, rng);
  if (m) nm_prune(n.weights.flat(), k, c, 1, m);
  n.bias = Tensor32({k}, 7);
  n.rq = calibrate_requant(c);
  n.out_shape = {tokens, k};
  g.add(std::move(n));
  return g;
}

/// Single tiny conv whose tile grid cannot reach 8 tiles: 2 output rows
/// x 1 output channel caps the grid at 2 tiles however hard the
/// shard-aware search tries.
Graph tiny_conv(uint64_t seed) {
  Rng rng(seed);
  Graph g({2, 4, 4});
  Node n;
  n.op = OpType::kConv2d;
  n.name = "conv";
  n.inputs = {0};
  n.conv = ConvGeom{.ix = 4, .iy = 2, .c = 4, .k = 1, .fx = 3, .fy = 3,
                    .stride = 1, .pad = 1};
  n.weights = Tensor8::random({1, n.conv.fsz()}, rng);
  n.bias = Tensor32({1}, 3);
  n.rq = calibrate_requant(n.conv.fsz());
  n.out_shape = {2, 4, 1};
  g.add(std::move(n));
  return g;
}

void expect_sharded_bit_exact(const Graph& graph,
                              const std::vector<int>& in_shape,
                              uint64_t seed) {
  Rng rng(seed);
  const Tensor8 input = Tensor8::random(in_shape, rng);
  Compiler baseline_compiler(isa_options());
  const CompiledPlan baseline_plan = baseline_compiler.compile(graph);
  ExecutionEngine engine;
  const NetworkRun baseline = engine.run(baseline_plan, input);
  const auto cache = baseline_compiler.shared_latencies();

  for (int n : {1, 2, 4}) {
    Compiler compiler(isa_options(n), cache);
    const CompiledPlan plan = compiler.compile(graph);
    MultiClusterEngine mce(n);
    const ShardedRun sharded = mce.run(plan, input);
    EXPECT_TRUE(sharded.run.output == baseline.output)
        << "sharded output differs at " << n << " clusters";
    // the same shard-aware plan through the single-cluster engine agrees
    const NetworkRun same_plan = engine.run(plan, input);
    EXPECT_TRUE(sharded.run.output == same_plan.output);
    EXPECT_EQ(sharded.num_clusters, n);
    EXPECT_EQ(sharded.single_cluster_cycles, plan.total_cycles);
  }
}

// --- bit-exactness ----------------------------------------------------------

TEST(Shard, HostKernelShardSlicesMatchTheReferenceEngine) {
  // sharded ranged host kernels (sparse + blocked _into counterparts) vs
  // the scalar reference path, and vs an MCE forced onto the reference
  // ranged ops — all three must produce identical bytes
  const Graph g = scaled_resnet18();
  Rng rng(31);
  const Tensor8 input = Tensor8::random({16, 16, 4}, rng);
  Compiler compiler(isa_options(4));
  const CompiledPlan plan = compiler.compile(g);

  ExecutionEngine ref_engine;
  ref_engine.set_use_host_kernels(false);
  const NetworkRun ref = ref_engine.run(plan, input);

  MultiClusterEngine host_mce(4);  // host kernels on by default
  EXPECT_TRUE(host_mce.run(plan, input).run.output == ref.output);

  MultiClusterEngine ref_mce(4);
  ref_mce.set_use_host_kernels(false);
  EXPECT_TRUE(ref_mce.run(plan, input).run.output == ref.output);
}

TEST(Shard, HostKernelFcReductionSplitMatchesTheReferenceEngine) {
  // single-tile FC -> kFcC reduction split through host_fc_s32_partial,
  // dense and sparse
  for (const int m : {0, 8}) {
    const Graph g = single_fc(1, 256, 16, m, 77);
    Rng rng(78);
    const Tensor8 input = Tensor8::random({1, 256}, rng);
    Compiler compiler(isa_options(4));
    const CompiledPlan plan = compiler.compile(g);
    ExecutionEngine ref_engine;
    ref_engine.set_use_host_kernels(false);
    const NetworkRun ref = ref_engine.run(plan, input);
    MultiClusterEngine mce(4);
    const ShardedRun sharded = mce.run(plan, input);
    EXPECT_TRUE(sharded.run.output == ref.output) << "m=" << m;
  }
}

TEST(Shard, MultiClusterBitExactWithSingleClusterResnet18) {
  expect_sharded_bit_exact(scaled_resnet18(), {16, 16, 4}, 41);
}

TEST(Shard, MultiClusterBitExactWithSingleClusterVit) {
  expect_sharded_bit_exact(scaled_vit(), {64, 64, 4}, 42);
}

// --- cycle model ------------------------------------------------------------

TEST(Shard, OneClusterDegeneratesToTheUnshardedSchedule) {
  const Graph g = scaled_resnet18();
  Compiler compiler(isa_options());
  const CompiledPlan plan = compiler.compile(g);
  MultiClusterEngine mce(1);
  const ShardPlan& sp = mce.shard_plan(plan);
  EXPECT_EQ(sp.critical_path_cycles, plan.total_cycles)
      << "a 1-cluster shard plan must reproduce the plan total exactly";
  EXPECT_EQ(sp.reduction_cycles, 0u);
  EXPECT_EQ(sp.cluster_busy_cycles[0], plan.total_cycles);
}

TEST(Shard, CriticalPathShrinksWithClustersAndUtilizationIsSane) {
  const Graph g = scaled_resnet18();
  Compiler one(isa_options());
  const CompiledPlan p1 = one.compile(g);
  Rng rng(43);
  const Tensor8 input = Tensor8::random({16, 16, 4}, rng);

  uint64_t prev = p1.total_cycles;
  for (int n : {2, 4}) {
    Compiler compiler(isa_options(n), one.shared_latencies());
    const CompiledPlan plan = compiler.compile(g);
    MultiClusterEngine mce(n);
    const ShardedRun sharded = mce.run(plan, input);
    EXPECT_LT(sharded.critical_path_cycles, prev)
        << "more clusters must shorten the critical path";
    prev = sharded.critical_path_cycles;
    // reduction overhead is accounted inside the critical path
    EXPECT_GT(sharded.reduction_cycles, 0u);
    EXPECT_LT(sharded.reduction_cycles, sharded.critical_path_cycles);
    ASSERT_EQ(sharded.cluster_busy_cycles.size(), static_cast<size_t>(n));
    for (int c = 0; c < n; ++c) {
      EXPECT_LE(sharded.utilization(c), 1.0 + 1e-9);
    }
    EXPECT_GT(sharded.utilization(0), 0.5);
  }
  // the paper-style headline: >= 1.7x at 2 clusters against the
  // single-cluster plan (the full-size bench asserts the 4-cluster bar)
  Compiler two(isa_options(2), one.shared_latencies());
  const CompiledPlan p2 = two.compile(g);
  MultiClusterEngine mce(2);
  const ShardedRun sharded = mce.run(p2, input);
  EXPECT_GE(static_cast<double>(p1.total_cycles) /
                static_cast<double>(sharded.critical_path_cycles),
            1.7);
}

// --- the kFcC partial-sum reduction path ------------------------------------

TEST(Shard, SingleTileFcSplitsTheReductionAxisBitExactly) {
  // k = 4 output channels over c = 512 features compiles to one tile on
  // one cluster; sharding it across 4 clusters must switch to the
  // input-feature split and reduce int32 partials before requant.
  for (int m : {0, 8}) {
    const Graph g = single_fc(3, 512, 4, m, 44 + m);
    Compiler compiler(isa_options());  // single-cluster plan: one tile
    const CompiledPlan plan = compiler.compile(g);
    ASSERT_EQ(plan.steps[0].tile_costs.size(), 1u);

    MultiClusterEngine mce(4);
    const ShardPlan& sp = mce.shard_plan(plan);
    EXPECT_EQ(sp.steps[0].axis, ShardAxis::kFcC);
    EXPECT_EQ(sp.steps[0].active_clusters(), 4);
    EXPECT_GT(sp.steps[0].reduce_cycles, 0u);
    EXPECT_LT(sp.critical_path_cycles, plan.total_cycles)
        << "splitting the reduction axis must beat one cluster";

    ExecutionEngine engine;
    Rng rng(45);
    for (int i = 0; i < 4; ++i) {
      const Tensor8 x = Tensor8::random({3, 512}, rng);
      const ShardedRun sharded = mce.run(plan, x);
      EXPECT_TRUE(sharded.run.output == engine.run(plan, x).output)
          << "m=" << m << " input " << i;
    }
  }
}

// --- degenerate layers ------------------------------------------------------

TEST(Shard, LayerWithFewerTilesThanClustersLeavesClustersIdle) {
  const Graph g = tiny_conv(46);
  Compiler compiler(isa_options(8));
  const CompiledPlan plan = compiler.compile(g);
  ASSERT_LT(plan.steps[0].tile_costs.size(), 8u)
      << "the degenerate conv must not be able to fill 8 clusters";

  MultiClusterEngine mce(8);
  const ShardPlan& sp = mce.shard_plan(plan);
  EXPECT_LT(sp.steps[0].active_clusters(), 8);
  EXPECT_GE(sp.steps[0].active_clusters(), 1);

  Rng rng(47);
  const Tensor8 x = Tensor8::random({2, 4, 4}, rng);
  ExecutionEngine engine;
  const ShardedRun sharded = mce.run(plan, x);
  EXPECT_TRUE(sharded.run.output == engine.run(plan, x).output);
  // idle clusters report zero utilization, active ones a positive one
  int idle = 0;
  for (int c = 0; c < 8; ++c) idle += sharded.utilization(c) == 0.0 ? 1 : 0;
  EXPECT_GT(idle, 0);
}

// --- fingerprints and caching -----------------------------------------------

TEST(Shard, PlanFingerprintSaltsOnShardConfig) {
  const Graph g = scaled_resnet18();
  const uint64_t f1 = plan_fingerprint(g, isa_options(1));
  const uint64_t f2 = plan_fingerprint(g, isa_options(2));
  const uint64_t f4 = plan_fingerprint(g, isa_options(4));
  EXPECT_NE(f1, f2);
  EXPECT_NE(f2, f4);
  EXPECT_NE(f1, f4);
  // same config, same content: stable
  EXPECT_EQ(f2, plan_fingerprint(g, isa_options(2)));
  // batch salts too (a fused plan is a different tile schedule)
  CompileOptions fused = isa_options(1);
  fused.batch = 4;
  EXPECT_NE(f1, plan_fingerprint(g, fused));
}

TEST(Shard, ShardPlanIsBuiltOncePerPlanIdentity) {
  const Graph g = scaled_resnet18();
  Compiler compiler(isa_options(2));
  const CompiledPlan plan = compiler.compile(g);
  MultiClusterEngine mce(2);
  Rng rng(48);
  const Tensor8 x = Tensor8::random({16, 16, 4}, rng);
  mce.run(plan, x);
  mce.run(plan, x);
  EXPECT_EQ(mce.plans(), 1) << "a repeated plan must shard-plan once";

  // a recompiled identical plan reuses the shard schedule as well
  Compiler again(isa_options(2), compiler.shared_latencies());
  const CompiledPlan twin = again.compile(g);
  mce.run(twin, x);
  EXPECT_EQ(mce.plans(), 1);
}

TEST(Shard, BatchFusedPlansAreRejected) {
  const Graph g = single_fc(8, 64, 32, 8, 49);
  CompileOptions opt = isa_options(1);
  opt.batch = 4;
  Compiler compiler(opt);
  const CompiledPlan plan = compiler.compile(g);
  MultiClusterEngine mce(2);
  Rng rng(50);
  const Tensor8 x = Tensor8::random({8, 64}, rng);
  EXPECT_THROW(mce.run(plan, x), Error);
}

}  // namespace
}  // namespace decimate
