#include "sim/core.hpp"

#include <gtest/gtest.h>

#include "common/bitutil.hpp"
#include "isa/builder.hpp"

namespace decimate {
namespace {

using namespace reg;

struct CoreRig {
  SocMemory mem;
  CoreConfig cfg;
  Program prog;

  Core run(KernelBuilder& b, uint32_t arg0 = 0) {
    b.halt();
    prog = b.build();
    Core core(0, mem, cfg);
    core.reset(prog.code, arg0, MemoryMap::kL1Base + MemoryMap::kL1Size);
    core.run_segment();
    return core;
  }
};

TEST(Core, AluBasics) {
  CoreRig rig;
  KernelBuilder b;
  b.li(a0, 7);
  b.li(a1, -3);
  b.add(a2, a0, a1);    // 4
  b.sub(a3, a0, a1);    // 10
  b.mul(a4, a0, a1);    // -21
  b.and_(a5, a0, a1);   // 7 & -3 = 5
  b.xor_(a6, a0, a1);   // 7 ^ -3
  b.slt(a7, a1, a0);    // 1
  b.sltu(t0, a0, a1);   // 7 < 0xFFFFFFFD unsigned -> 1
  const Core c = rig.run(b);
  EXPECT_EQ(c.reg(a2), 4u);
  EXPECT_EQ(c.reg(a3), 10u);
  EXPECT_EQ(static_cast<int32_t>(c.reg(a4)), -21);
  EXPECT_EQ(c.reg(a5), 5u);
  EXPECT_EQ(c.reg(a6), static_cast<uint32_t>(7 ^ -3));
  EXPECT_EQ(c.reg(a7), 1u);
  EXPECT_EQ(c.reg(t0), 1u);
}

TEST(Core, ShiftsAndClip) {
  CoreRig rig;
  KernelBuilder b;
  b.li(a0, -256);
  b.srai(a1, a0, 4);  // -16
  b.srli(a2, a0, 28);
  b.slli(a3, a0, 2);
  b.li(a4, 300);
  b.pclip(a5, a4, 8);  // 127
  b.li(a6, -300);
  b.pclip(a7, a6, 8);  // -128
  const Core c = rig.run(b);
  EXPECT_EQ(static_cast<int32_t>(c.reg(a1)), -16);
  EXPECT_EQ(c.reg(a2), 0xFu);
  EXPECT_EQ(static_cast<int32_t>(c.reg(a3)), -1024);
  EXPECT_EQ(static_cast<int32_t>(c.reg(a5)), 127);
  EXPECT_EQ(static_cast<int32_t>(c.reg(a7)), -128);
}

TEST(Core, MulhDivRem) {
  CoreRig rig;
  KernelBuilder b;
  b.li(a0, 1 << 20);
  b.li(a1, 1 << 15);
  b.mulh(a2, a0, a1);  // (2^35) >> 32 = 8
  b.li(a3, -100);
  b.li(a4, 7);
  b.div(a5, a3, a4);   // -14
  b.rem(a6, a3, a4);   // -2
  b.li(t0, 100);
  b.divu(t1, t0, a4);  // 14
  b.div(t2, t0, zero); // div by zero -> -1
  const Core c = rig.run(b);
  EXPECT_EQ(c.reg(a2), 8u);
  EXPECT_EQ(static_cast<int32_t>(c.reg(a5)), -14);
  EXPECT_EQ(static_cast<int32_t>(c.reg(a6)), -2);
  EXPECT_EQ(c.reg(t1), 14u);
  EXPECT_EQ(c.reg(t2), 0xFFFFFFFFu);
}

TEST(Core, LoadsStoresAndSignExtension) {
  CoreRig rig;
  const uint32_t base = MemoryMap::kL1Base;
  rig.mem.write8(base + 0, 0x80);      // -128 as int8
  rig.mem.write16(base + 2, 0x8000);   // -32768 as int16
  rig.mem.write32(base + 4, 0xDEADBEEF);
  KernelBuilder b;
  b.li(a0, static_cast<int32_t>(base));
  b.lb(a1, 0, a0);
  b.lbu(a2, 0, a0);
  b.lh(a3, 2, a0);
  b.lhu(a4, 2, a0);
  b.lw(a5, 4, a0);
  b.li(t0, -77);
  b.sb(t0, 8, a0);
  b.lb(a6, 8, a0);
  b.li(t1, 0x1234);
  b.sh(t1, 10, a0);
  b.lhu(a7, 10, a0);
  const Core c = rig.run(b);
  EXPECT_EQ(static_cast<int32_t>(c.reg(a1)), -128);
  EXPECT_EQ(c.reg(a2), 0x80u);
  EXPECT_EQ(static_cast<int32_t>(c.reg(a3)), -32768);
  EXPECT_EQ(c.reg(a4), 0x8000u);
  EXPECT_EQ(c.reg(a5), 0xDEADBEEFu);
  EXPECT_EQ(static_cast<int32_t>(c.reg(a6)), -77);
  EXPECT_EQ(c.reg(a7), 0x1234u);
}

TEST(Core, PostIncrementLoadsAdvancePointer) {
  CoreRig rig;
  const uint32_t base = MemoryMap::kL1Base;
  rig.mem.write32(base + 0, 0x11111111);
  rig.mem.write32(base + 4, 0x22222222);
  KernelBuilder b;
  b.li(a0, static_cast<int32_t>(base));
  b.lw_pi(a1, a0, 4);
  b.lw_pi(a2, a0, 4);
  b.li(t0, 0x33);
  b.sb_pi(t0, a0, 1);
  b.sb_pi(t0, a0, 1);
  const Core c = rig.run(b);
  EXPECT_EQ(c.reg(a1), 0x11111111u);
  EXPECT_EQ(c.reg(a2), 0x22222222u);
  EXPECT_EQ(c.reg(a0), base + 10);
  EXPECT_EQ(rig.mem.read8(base + 8), 0x33);
  EXPECT_EQ(rig.mem.read8(base + 9), 0x33);
}

TEST(Core, RegRegAddressing) {
  CoreRig rig;
  const uint32_t base = MemoryMap::kL1Base;
  rig.mem.write8(base + 17, 0xAB);
  KernelBuilder b;
  b.li(a0, static_cast<int32_t>(base));
  b.li(a1, 17);
  b.lbu_rr(a2, a0, a1);
  const Core c = rig.run(b);
  EXPECT_EQ(c.reg(a2), 0xABu);
}

TEST(Core, BranchesAndTakenPenalty) {
  CoreRig rig;
  KernelBuilder b;
  b.li(a0, 0);
  b.li(a1, 3);
  b.bind("loop");
  b.addi(a0, a0, 1);
  b.blt(a0, a1, "loop");
  const Core c = rig.run(b);
  EXPECT_EQ(c.reg(a0), 3u);
  // 2 li + 3 addi + 3 blt + halt = 9 instructions; 2 taken branches add 2
  EXPECT_EQ(c.stats().instructions, 9u);
  EXPECT_EQ(c.stats().cycles, 11u);
  EXPECT_EQ(c.stats().taken_branches, 2u);
}

TEST(Core, HardwareLoopZeroOverhead) {
  CoreRig rig;
  KernelBuilder b;
  b.li(a0, 0);
  b.li(t0, 100);
  b.hw_loop(0, t0, [&] {
    b.addi(a0, a0, 1);
    b.addi(a1, a1, 2);
  });
  const Core c = rig.run(b);
  EXPECT_EQ(c.reg(a0), 100u);
  EXPECT_EQ(c.reg(a1), 200u);
  // 2 li + lp.setup + 200 body + halt = 204 instructions = 204 cycles
  EXPECT_EQ(c.stats().instructions, 204u);
  EXPECT_EQ(c.stats().cycles, 204u);
}

TEST(Core, NestedHardwareLoops) {
  CoreRig rig;
  KernelBuilder b;
  b.li(a0, 0);
  b.li(t0, 5);
  b.hw_loop(1, t0, [&] {
    b.li(t1, 7);
    b.hw_loop(0, t1, [&] {
      b.addi(a0, a0, 1);
      b.nop();
    });
    b.nop();
  });
  const Core c = rig.run(b);
  EXPECT_EQ(c.reg(a0), 35u);
}

TEST(Core, HardwareLoopReentry) {
  // A hw loop re-initialized inside a branch loop must restart cleanly.
  CoreRig rig;
  KernelBuilder b;
  b.li(a0, 0);
  b.li(a2, 0);
  b.li(a3, 4);
  b.bind("outer");
  b.li(t0, 3);
  b.hw_loop(0, t0, [&] {
    b.addi(a0, a0, 1);
    b.nop();
  });
  b.addi(a2, a2, 1);
  b.blt(a2, a3, "outer");
  const Core c = rig.run(b);
  EXPECT_EQ(c.reg(a0), 12u);
}

TEST(Core, SimdOps) {
  CoreRig rig;
  KernelBuilder b;
  b.li(a0, static_cast<int32_t>(pack_b4(1, -2, 3, -4)));
  b.li(a1, static_cast<int32_t>(pack_b4(5, 6, -7, 8)));
  b.li(a2, 1000);
  b.sdotsp_b(a2, a0, a1);  // 1000 + (5 -12 -21 -32) = 940
  b.pv_max_b(a3, a0, a1);
  b.pv_add_b(a4, a0, a1);
  const Core c = rig.run(b);
  EXPECT_EQ(c.reg(a2), 940u);
  EXPECT_EQ(c.reg(a3), pack_b4(5, 6, 3, 8));
  EXPECT_EQ(c.reg(a4), pack_b4(6, 4, -4, 4));
}

TEST(Core, PvLbInsInsertsLaneWithStride) {
  CoreRig rig;
  const uint32_t base = MemoryMap::kL1Base;
  // M=8 layout: blocks of 8; offsets 3, 5 in blocks 0 and 1.
  rig.mem.write8(base + 3, 0x11);
  rig.mem.write8(base + 8 + 5, 0x22);
  KernelBuilder b;
  b.li(a0, static_cast<int32_t>(base));
  b.li(a1, 3);
  b.pv_lb_ins(a3, 0, a0, a1, 8);
  b.li(a1, 5);
  b.pv_lb_ins(a3, 1, a0, a1, 8);  // lane 1 -> addr base + 1*8 + 5
  const Core c = rig.run(b);
  EXPECT_EQ(c.reg(a3) & 0xFF, 0x11u);
  EXPECT_EQ((c.reg(a3) >> 8) & 0xFF, 0x22u);
}

TEST(Core, HartidAndJalJalr) {
  SocMemory mem;
  KernelBuilder b;
  b.hartid(a0);
  b.call("sub");
  b.j("end");
  b.bind("sub");
  b.addi(a1, a1, 42);
  b.ret();
  b.bind("end");
  b.halt();
  Program p = b.build();
  Core core(5, mem, CoreConfig{});
  core.reset(p.code, 0, MemoryMap::kL1Base + 1024);
  core.run_segment();
  EXPECT_EQ(core.reg(a0), 5u);
  EXPECT_EQ(core.reg(a1), 42u);
}

TEST(Core, L2AccessPenalty) {
  CoreRig rig;
  rig.cfg.l2_access_penalty = 8;
  KernelBuilder b0;
  b0.li(a0, static_cast<int32_t>(MemoryMap::kL1Base));
  b0.lw(a1, 0, a0);
  const Core c_l1 = rig.run(b0);
  CoreRig rig2;
  rig2.cfg.l2_access_penalty = 8;
  KernelBuilder b1;
  b1.li(a0, static_cast<int32_t>(MemoryMap::kL2Base));
  b1.lw(a1, 0, a0);
  const Core c_l2 = rig2.run(b1);
  EXPECT_EQ(c_l2.stats().cycles, c_l1.stats().cycles + 8);
}

TEST(Core, RunawayGuardThrows) {
  CoreRig rig;
  KernelBuilder b;
  b.bind("spin");
  b.nop();
  b.j("spin");
  b.halt();
  Program p = b.build();
  Core core(0, rig.mem, rig.cfg);
  core.reset(p.code, 0, MemoryMap::kL1Base + 1024);
  EXPECT_THROW(core.run_segment(/*max_cycles=*/1000), Error);
}

}  // namespace
}  // namespace decimate
