// Wall-clock serving tests: the FaultInjector's deterministic schedules,
// EDF queue ordering and shed-victim selection, the pure admission
// decision, and the WallClockServer end to end — a 4-thread bit-exact
// smoke (the TSan target), reject-at-admission, shed-under-burst,
// queue-full rejection with shedding off, and every rung of the
// fault-tolerance ladder under seeded injection: retry-then-succeed,
// watchdog-timeout-then-per-image-redispatch, quarantine-after-N
// consecutive failures, corrupt-artifact fallback to a fresh compile,
// and brown-out batch shrinking under a deep queue.
//
// Fault tests use deadlines in the seconds so WHICH requests complete is
// schedule-determined, not machine-speed-determined — the suite must
// pass identically under TSan's ~10x slowdown.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <thread>
#include <unistd.h>

#include "exec/engine.hpp"
#include "models/models.hpp"
#include "serve/fault.hpp"
#include "serve/wallclock.hpp"
#include "trace/metrics.hpp"

namespace decimate {
namespace {

namespace fs = std::filesystem;

constexpr uint64_t kHugeDeadlineNs = 20'000'000'000;  // 20 s: never binds

CompileOptions isa_options() {
  CompileOptions opt;
  opt.enable_isa = true;
  return opt;
}

Graph small_ffn() { return build_ffn_block(32, 64, 128, 8, 11); }

std::vector<int> input_shape(const Graph& g) { return g.node(0).out_shape; }

/// One latency cache for the whole binary: tile geometries repeat across
/// tests, so every unique tile is ISS-measured once per test run.
std::shared_ptr<TileLatencyCache> shared_test_cache() {
  static auto cache = std::make_shared<TileLatencyCache>();
  return cache;
}

/// Installs the injector on construction, uninstalls on destruction.
/// Declare BEFORE the server under test: the injector must outlive every
/// thread that can fire a hook.
struct Installed {
  explicit Installed(fault::FaultInjector& inj) {
    fault::FaultInjector::install(&inj);
  }
  ~Installed() { fault::FaultInjector::install(nullptr); }
};

/// A scratch directory that cleans up after itself.
struct TempDir {
  TempDir() {
    path = (fs::temp_directory_path() /
            ("decimate_wallclock_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter()++)))
               .string();
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static std::atomic<int>& counter() {
    static std::atomic<int> c{0};
    return c;
  }
  std::string path;
};

WallRequest request(uint64_t id, int model, Tensor8 input,
                    uint64_t deadline_ns = kHugeDeadlineNs, int value = 1) {
  WallRequest r;
  r.id = id;
  r.model = model;
  r.value = value;
  r.deadline_ns = deadline_ns;
  r.input = std::move(input);
  return r;
}

std::map<ServeOutcome, int> outcome_counts(
    const std::vector<WallServed>& done) {
  std::map<ServeOutcome, int> counts;
  for (const WallServed& w : done) ++counts[w.outcome];
  return counts;
}

// --- FaultInjector ----------------------------------------------------------

TEST(FaultInjector, ScheduleIsDeterministicOverEventCounts) {
  fault::FaultInjector inj(7);
  fault::SitePlan plan;
  plan.kind = fault::Kind::kException;
  plan.period = 3;
  plan.phase = 1;
  plan.count = 2;
  inj.set_plan(fault::Site::kWorkerTask, plan);

  std::vector<uint64_t> thrown_at;
  for (int i = 0; i < 9; ++i) {
    try {
      inj.fire(fault::Site::kWorkerTask);
    } catch (const fault::FaultInjectedError& e) {
      EXPECT_EQ(e.site(), fault::Site::kWorkerTask);
      thrown_at.push_back(e.seq());
    }
  }
  // period 3, phase 1 would fire at seqs 1, 4, 7, ... but count = 2 stops
  // the schedule after two injections
  ASSERT_EQ(thrown_at, (std::vector<uint64_t>{1, 4}));
  EXPECT_EQ(inj.events(fault::Site::kWorkerTask), 9u);
  EXPECT_EQ(inj.injected(fault::Site::kWorkerTask), 2u);
  // other sites never fired
  EXPECT_EQ(inj.events(fault::Site::kDispatchExec), 0u);
  EXPECT_EQ(inj.injected(fault::Site::kDispatchExec), 0u);
}

TEST(FaultInjector, FlipBitIsSeedDeterministicAndLandsInSecondHalf) {
  const std::vector<uint8_t> zeros(64, 0);
  fault::FaultInjector a(42);
  fault::FaultInjector b(42);

  std::vector<uint8_t> va = zeros;
  std::vector<uint8_t> vb = zeros;
  a.flip_bit(va, 5);
  b.flip_bit(vb, 5);
  EXPECT_EQ(va, vb);  // same (seed, seq) -> same bit

  int flipped_bits = 0;
  size_t flipped_at = 0;
  for (size_t i = 0; i < va.size(); ++i) {
    if (va[i] != 0) {
      flipped_at = i;
      for (int bit = 0; bit < 8; ++bit) flipped_bits += (va[i] >> bit) & 1;
    }
  }
  EXPECT_EQ(flipped_bits, 1);       // exactly one bit
  EXPECT_GE(flipped_at, 32u);       // second half: inside the CRC-covered
                                    // weight section for real artifacts
}

TEST(FaultInjector, UninstalledHookIsANoOp) {
  ASSERT_EQ(fault::FaultInjector::installed(), nullptr);
  EXPECT_NO_THROW(fault::on_site(fault::Site::kWorkerTask));
  EXPECT_NO_THROW(fault::on_site(fault::Site::kDispatchExec));
}

// --- EdfQueue / admission_decision ------------------------------------------

QueuedRequest queued(uint64_t id, uint64_t deadline_abs, int value = 1,
                     uint64_t arrival = 0, uint64_t pred = 100) {
  QueuedRequest q;
  q.req.id = id;
  q.req.value = value;
  q.arrival_ns = arrival;
  q.deadline_abs_ns = deadline_abs;
  q.predicted_exec_ns = pred;
  return q;
}

TEST(EdfQueue, OrdersByDeadlineStableOnTies) {
  EdfQueue q;
  q.push(queued(0, 300));
  q.push(queued(1, 100));
  q.push(queued(2, 200));
  q.push(queued(3, 100));  // ties queue behind earlier arrivals
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.backlog_ns(), 400u);
  EXPECT_EQ(q.front().req.id, 1u);

  const auto batch = q.pop_model_batch(0, 8);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].req.id, 1u);
  EXPECT_EQ(batch[1].req.id, 3u);
  EXPECT_EQ(batch[2].req.id, 2u);
  EXPECT_EQ(batch[3].req.id, 0u);
  EXPECT_EQ(q.backlog_ns(), 0u);
}

TEST(EdfQueue, PopModelBatchKeepsOtherModelsQueued) {
  EdfQueue q;
  auto a = queued(0, 100);
  a.req.model = 0;
  auto b = queued(1, 150);
  b.req.model = 1;
  auto c = queued(2, 200);
  c.req.model = 0;
  q.push(std::move(a));
  q.push(std::move(b));
  q.push(std::move(c));

  const auto batch = q.pop_model_batch(0, 8);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].req.id, 0u);
  EXPECT_EQ(batch[1].req.id, 2u);
  ASSERT_EQ(q.size(), 1u);
  EXPECT_EQ(q.front().req.id, 1u);  // model 1 kept its place
}

TEST(EdfQueue, ShedVictimIsLowestValueThenLatestDeadline) {
  EdfQueue q;
  q.push(queued(0, 100, /*value=*/5));
  q.push(queued(1, 400, /*value=*/1));  // lowest value: first victim
  q.push(queued(2, 500, /*value=*/5));  // then latest deadline among value 5
  q.push(queued(3, 200, /*value=*/5));

  EXPECT_EQ(q.shed_one().req.id, 1u);
  EXPECT_EQ(q.shed_one().req.id, 2u);
  // of the remaining {0: deadline 100, 3: deadline 200}, the later
  // deadline sheds first
  EXPECT_EQ(q.shed_one().req.id, 3u);
}

TEST(EdfQueue, ShedVictimPrefersLatestDeadline) {
  EdfQueue q;
  q.push(queued(0, 100));
  q.push(queued(1, 200));
  EXPECT_EQ(q.shed_one().req.id, 1u);
  EXPECT_EQ(q.shed_one().req.id, 0u);
  EXPECT_TRUE(q.empty());
}

TEST(Admission, DecisionBoundaries) {
  AdmissionPolicy p;
  p.max_queue_depth = 4;
  p.headroom = 1.0;  // exact arithmetic at the boundary

  // feasible: now + backlog + pred == deadline admits
  EXPECT_EQ(admission_decision(p, 1000, 1000 + 300, 100, 200, 0),
            ServeReason::kNone);
  // one ns past the deadline rejects
  EXPECT_EQ(admission_decision(p, 1000, 1000 + 299, 100, 200, 0),
            ServeReason::kAdmissionInfeasible);
  // headroom scales the predicted work before the comparison
  p.headroom = 2.0;
  EXPECT_EQ(admission_decision(p, 1000, 1000 + 599, 100, 200, 0),
            ServeReason::kAdmissionInfeasible);
  EXPECT_EQ(admission_decision(p, 1000, 1000 + 600, 100, 200, 0),
            ServeReason::kNone);
  // admission control off admits the doomed
  p.admission_control = false;
  EXPECT_EQ(admission_decision(p, 1000, 1000, 100, 200, 0),
            ServeReason::kNone);
  // a full queue rejects only when shedding is off (otherwise the EDF
  // queue evicts a victim instead)
  EXPECT_EQ(admission_decision(p, 0, kHugeDeadlineNs, 1, 0, 4),
            ServeReason::kNone);
  p.shedding = false;
  EXPECT_EQ(admission_decision(p, 0, kHugeDeadlineNs, 1, 0, 4),
            ServeReason::kQueueFull);
  EXPECT_EQ(admission_decision(p, 0, kHugeDeadlineNs, 1, 0, 3),
            ServeReason::kNone);
}

// --- WallClockServer: happy path --------------------------------------------

/// The TSan smoke: 4 submitter threads race submit() against the serving
/// loop and two executor threads; every request completes bit-exactly.
TEST(WallClock, ServesConcurrentSubmittersBitExact) {
  PlanStore store(isa_options(), shared_test_cache());
  const Graph g = small_ffn();
  const int m = store.add_model(g);

  WallClockConfig cfg;
  cfg.max_batch = 4;
  cfg.executors = 2;
  WallClockServer server(store, DispatchConfig{1, {1, 2, 4}}, cfg);
  server.warm(m);
  EXPECT_GT(server.ns_per_cycle(), 0.0);
  EXPECT_GT(server.sustained_img_per_s(m), 0.0);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 4;
  std::vector<std::vector<Tensor8>> inputs(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    Rng rng(1000 + static_cast<uint64_t>(t));
    for (int i = 0; i < kPerThread; ++i) {
      inputs[static_cast<size_t>(t)].push_back(
          Tensor8::random(input_shape(g), rng));
    }
  }

  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t id =
            static_cast<uint64_t>(t) * kPerThread + static_cast<uint64_t>(i);
        server.submit(request(id, m,
                              inputs[static_cast<size_t>(t)]
                                    [static_cast<size_t>(i)]));
      }
    });
  }
  std::thread closer([&] {
    for (std::thread& t : submitters) t.join();
    server.close();
  });
  const std::vector<WallServed> done = server.serve();
  closer.join();

  ASSERT_EQ(done.size(), static_cast<size_t>(kThreads * kPerThread));
  ExecutionEngine engine;
  for (const WallServed& w : done) {
    ASSERT_EQ(w.outcome, ServeOutcome::kOk)
        << "request " << w.id << ": " << to_string(w.reason) << " "
        << w.detail;
    EXPECT_EQ(w.reason, ServeReason::kNone);
    EXPECT_GE(w.group_size, 1);
    EXPECT_GE(w.completion_ns, w.arrival_ns);
    const int t = static_cast<int>(w.id) / kPerThread;
    const int i = static_cast<int>(w.id) % kPerThread;
    const NetworkRun ref = engine.run(
        store.plan(m, 1, 1),
        inputs[static_cast<size_t>(t)][static_cast<size_t>(i)]);
    EXPECT_TRUE(w.output == ref.output)
        << "request " << w.id << " output differs from sequential run";
  }
}

TEST(WallClock, RejectsAtAdmissionWhenDeadlineIsInfeasible) {
  PlanStore store(isa_options(), shared_test_cache());
  const Graph g = small_ffn();
  const int m = store.add_model(g);

  WallClockServer server(store, DispatchConfig{1, {1}}, WallClockConfig{});
  server.warm(m);

  Rng rng(3);
  // 1 ns to deadline: predicted service alone blows the budget
  server.submit(request(0, m, Tensor8::random(input_shape(g), rng), 1));
  // a generous sibling is still admitted afterwards
  server.submit(request(1, m, Tensor8::random(input_shape(g), rng)));
  server.close();
  const auto done = server.serve();

  ASSERT_EQ(done.size(), 2u);
  std::map<uint64_t, const WallServed*> by_id;
  for (const WallServed& w : done) by_id[w.id] = &w;
  EXPECT_EQ(by_id[0]->outcome, ServeOutcome::kRejected);
  EXPECT_EQ(by_id[0]->reason, ServeReason::kAdmissionInfeasible);
  EXPECT_THROW(throw by_id[0]->error(), ServeError);
  EXPECT_EQ(by_id[1]->outcome, ServeOutcome::kOk);
}

TEST(WallClock, ShedsLowestValueUnderBurst) {
  PlanStore store(isa_options(), shared_test_cache());
  const Graph g = small_ffn();
  const int m = store.add_model(g);

  WallClockConfig cfg;
  cfg.max_batch = 4;
  cfg.admission.max_queue_depth = 4;
  cfg.admission.admission_control = false;  // isolate depth shedding
  cfg.brownout = false;
  WallClockServer server(store, DispatchConfig{1, {1, 2, 4}}, cfg);
  server.warm(m);

  Rng rng(9);
  constexpr int kBurst = 32;
  for (int i = 0; i < kBurst; ++i) {
    server.submit(
        request(static_cast<uint64_t>(i), m,
                Tensor8::random(input_shape(g), rng)));
  }
  server.close();
  const auto done = server.serve();

  ASSERT_EQ(done.size(), static_cast<size_t>(kBurst));
  const auto counts = outcome_counts(done);
  EXPECT_EQ(counts.at(ServeOutcome::kShed), kBurst - 4);
  EXPECT_EQ(counts.at(ServeOutcome::kOk), 4);
  for (const WallServed& w : done) {
    if (w.outcome == ServeOutcome::kShed) {
      EXPECT_EQ(w.reason, ServeReason::kShedQueueDepth);
    }
  }
}

TEST(WallClock, HighValueArrivalDisplacesLowValueWaiter) {
  PlanStore store(isa_options(), shared_test_cache());
  const Graph g = small_ffn();
  const int m = store.add_model(g);

  WallClockConfig cfg;
  cfg.max_batch = 1;
  cfg.admission.max_queue_depth = 1;
  cfg.admission.admission_control = false;
  cfg.brownout = false;
  WallClockServer server(store, DispatchConfig{1, {1}}, cfg);
  server.warm(m);

  Rng rng(11);
  server.submit(request(0, m, Tensor8::random(input_shape(g), rng),
                        kHugeDeadlineNs, /*value=*/1));
  server.submit(request(1, m, Tensor8::random(input_shape(g), rng),
                        kHugeDeadlineNs, /*value=*/10));
  server.close();
  const auto done = server.serve();

  ASSERT_EQ(done.size(), 2u);
  std::map<uint64_t, const WallServed*> by_id;
  for (const WallServed& w : done) by_id[w.id] = &w;
  EXPECT_EQ(by_id[0]->outcome, ServeOutcome::kShed);  // low value evicted
  EXPECT_EQ(by_id[1]->outcome, ServeOutcome::kOk);
}

TEST(WallClock, QueueFullRejectsWhenSheddingDisabled) {
  PlanStore store(isa_options(), shared_test_cache());
  const Graph g = small_ffn();
  const int m = store.add_model(g);

  WallClockConfig cfg;
  cfg.max_batch = 2;
  cfg.admission.max_queue_depth = 2;
  cfg.admission.shedding = false;
  cfg.admission.admission_control = false;
  cfg.brownout = false;
  WallClockServer server(store, DispatchConfig{1, {1, 2}}, cfg);
  server.warm(m);

  Rng rng(13);
  for (int i = 0; i < 5; ++i) {
    server.submit(
        request(static_cast<uint64_t>(i), m,
                Tensor8::random(input_shape(g), rng)));
  }
  server.close();
  const auto done = server.serve();

  ASSERT_EQ(done.size(), 5u);
  const auto counts = outcome_counts(done);
  EXPECT_EQ(counts.at(ServeOutcome::kRejected), 3);
  EXPECT_EQ(counts.at(ServeOutcome::kOk), 2);
  for (const WallServed& w : done) {
    if (w.outcome == ServeOutcome::kRejected) {
      EXPECT_EQ(w.reason, ServeReason::kQueueFull);
    }
  }
}

// --- WallClockServer: fault-tolerance ladder --------------------------------

TEST(WallClock, RetriesTransientDispatchFaultThenSucceeds) {
  PlanStore store(isa_options(), shared_test_cache());
  const Graph g = small_ffn();
  const int m = store.add_model(g);

  fault::FaultInjector inj(21);
  fault::SitePlan plan;
  plan.kind = fault::Kind::kException;
  plan.period = 1;
  plan.phase = 0;
  plan.count = 1;  // exactly the first dispatch fails
  inj.set_plan(fault::Site::kDispatchExec, plan);
  Installed guard(inj);

  WallClockConfig cfg;
  cfg.max_batch = 1;
  cfg.max_retries = 2;
  cfg.retry_backoff_ns = 100'000;
  WallClockServer server(store, DispatchConfig{1, {1}}, cfg);
  server.warm(m);

  Rng rng(17);
  const Tensor8 input = Tensor8::random(input_shape(g), rng);
  server.submit(request(0, m, input));
  server.close();
  const auto done = server.serve();

  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].outcome, ServeOutcome::kOk);
  EXPECT_EQ(done[0].retries, 1);
  EXPECT_FALSE(done[0].redispatched);
  EXPECT_EQ(inj.injected(fault::Site::kDispatchExec), 1u);
  ExecutionEngine engine;
  EXPECT_TRUE(done[0].output == engine.run(store.plan(m, 1, 1), input).output);
}

TEST(WallClock, ExhaustedRetriesFailWithTypedWorkerFault) {
  PlanStore store(isa_options(), shared_test_cache());
  const Graph g = small_ffn();
  const int m = store.add_model(g);

  fault::FaultInjector inj(22);
  fault::SitePlan plan;
  plan.kind = fault::Kind::kException;
  plan.period = 1;  // every dispatch fails
  inj.set_plan(fault::Site::kDispatchExec, plan);
  Installed guard(inj);

  WallClockConfig cfg;
  cfg.max_batch = 1;
  cfg.max_retries = 1;
  cfg.retry_backoff_ns = 50'000;
  cfg.quarantine_after = 100;  // keep quarantine out of this test
  WallClockServer server(store, DispatchConfig{1, {1}}, cfg);
  server.warm(m);

  Rng rng(19);
  server.submit(request(0, m, Tensor8::random(input_shape(g), rng)));
  server.close();
  const auto done = server.serve();

  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].outcome, ServeOutcome::kFailed);
  EXPECT_EQ(done[0].reason, ServeReason::kWorkerFault);
  EXPECT_FALSE(done[0].detail.empty());
  const ServeError err = done[0].error();
  EXPECT_EQ(err.reason(), ServeReason::kWorkerFault);
  EXPECT_EQ(err.request_id(), 0u);
}

TEST(WallClock, WatchdogTimeoutRecoversViaPerImageRedispatch) {
  PlanStore store(isa_options(), shared_test_cache());
  const Graph g = small_ffn();
  const int m = store.add_model(g);

  fault::FaultInjector inj(23);
  fault::SitePlan plan;
  plan.kind = fault::Kind::kStall;
  plan.period = 1;
  plan.phase = 0;
  plan.count = 1;  // exactly the first dispatch hangs
  inj.set_plan(fault::Site::kDispatchExec, plan);
  inj.set_stall_ns(30'000'000'000);  // 30 s: only the cancel flag ends it
  Installed guard(inj);

  WallClockConfig cfg;
  cfg.max_batch = 2;
  cfg.executors = 2;  // the second executor keeps the pipeline alive
  cfg.watchdog_floor_ns = 5'000'000;  // abandon after ~5 ms
  cfg.watchdog_factor = 1.0;
  WallClockServer server(store, DispatchConfig{1, {1, 2}}, cfg);
  server.warm(m);

  Rng rng(29);
  const Tensor8 in0 = Tensor8::random(input_shape(g), rng);
  const Tensor8 in1 = Tensor8::random(input_shape(g), rng);
  server.submit(request(0, m, in0));
  server.submit(request(1, m, in1));
  server.close();

  const uint64_t timeouts_before =
      metrics::registry().counter("serve.wall.timeouts").value();
  const auto done = server.serve();

  ASSERT_EQ(done.size(), 2u);
  ExecutionEngine engine;
  std::map<uint64_t, const WallServed*> by_id;
  for (const WallServed& w : done) by_id[w.id] = &w;
  for (const auto& [id, w] : by_id) {
    EXPECT_EQ(w->outcome, ServeOutcome::kOk)
        << "request " << id << ": " << w->detail;
    EXPECT_TRUE(w->redispatched);
    EXPECT_EQ(w->group_size, 1);  // per-image recovery
  }
  EXPECT_TRUE(by_id[0]->output == engine.run(store.plan(m, 1, 1), in0).output);
  EXPECT_TRUE(by_id[1]->output == engine.run(store.plan(m, 1, 1), in1).output);
  EXPECT_GT(metrics::registry().counter("serve.wall.timeouts").value(),
            timeouts_before);
  // the abandoned stall was actually cancelled (not slept to term):
  // server destruction joined the executor without waiting 30 s, or this
  // test would time out
}

TEST(WallClock, QuarantinesPlansAfterConsecutiveFailures) {
  PlanStore store(isa_options(), shared_test_cache());
  const Graph g = small_ffn();
  const int m = store.add_model(g);

  fault::FaultInjector inj(31);
  fault::SitePlan plan;
  plan.kind = fault::Kind::kException;
  plan.period = 1;
  plan.phase = 0;
  plan.count = 2;  // two dispatches fail, then the injector goes quiet
  inj.set_plan(fault::Site::kDispatchExec, plan);
  Installed guard(inj);

  WallClockConfig cfg;
  cfg.max_batch = 1;
  cfg.max_retries = 0;       // every failure is terminal for its batch
  cfg.quarantine_after = 2;  // the second consecutive failure quarantines
  WallClockServer server(store, DispatchConfig{1, {1}}, cfg);
  server.warm(m);
  const int compiles_after_warm = store.compiles();

  Rng rng(37);
  const Tensor8 in0 = Tensor8::random(input_shape(g), rng);
  const Tensor8 in1 = Tensor8::random(input_shape(g), rng);
  server.submit(request(0, m, in0));
  server.submit(request(1, m, in1));
  server.close();
  const auto done = server.serve();

  ASSERT_EQ(done.size(), 2u);
  std::map<uint64_t, const WallServed*> by_id;
  for (const WallServed& w : done) by_id[w.id] = &w;
  // request 0: first failure, under the quarantine threshold -> kFailed
  EXPECT_EQ(by_id[0]->outcome, ServeOutcome::kFailed);
  EXPECT_EQ(by_id[0]->reason, ServeReason::kWorkerFault);
  // request 1: second consecutive failure trips quarantine; the
  // post-quarantine attempt runs on a freshly compiled plan and succeeds
  EXPECT_EQ(by_id[1]->outcome, ServeOutcome::kOk)
      << to_string(by_id[1]->reason) << " " << by_id[1]->detail;
  EXPECT_GE(store.quarantines(), 1);
  EXPECT_GT(store.compiles(), compiles_after_warm)
      << "the post-quarantine attempt must compile fresh";
  ExecutionEngine engine;
  EXPECT_TRUE(by_id[1]->output == engine.run(store.plan(m, 1, 1), in1).output);
}

TEST(WallClock, CorruptRegistryArtifactFallsBackToFreshCompile) {
  const Graph g = small_ffn();
  TempDir dir;

  // publisher: compile once, write through to the registry
  Tensor8 expect;
  {
    PlanStore store(isa_options(), shared_test_cache());
    store.attach_registry(dir.path);
    const int m = store.add_model(g);
    Rng rng(41);
    const Tensor8 input = Tensor8::random(input_shape(g), rng);
    expect = ExecutionEngine().run(store.plan(m, 1, 1), input).output;
  }

  // every registry load in the consumer sees one flipped bit in the
  // CRC-covered weight section; the admission gate must reject it and
  // the store must compile from the graph instead of serving garbage
  fault::FaultInjector inj(43);
  fault::SitePlan plan;
  plan.kind = fault::Kind::kBitFlip;
  plan.period = 1;
  inj.set_plan(fault::Site::kRegistryLoad, plan);
  Installed guard(inj);

  PlanStore store(isa_options(), shared_test_cache());
  store.attach_registry(dir.path);
  const int m = store.add_model(g);
  const CompiledPlan& fresh = store.plan(m, 1, 1);

  EXPECT_GE(store.registry_faults(), 1);
  EXPECT_GE(store.compiles(), 1);
  EXPECT_EQ(store.registry_loads(), 0);
  EXPECT_GE(inj.injected(fault::Site::kRegistryLoad), 1u);
  Rng rng(41);
  const Tensor8 input = Tensor8::random(input_shape(g), rng);
  EXPECT_TRUE(ExecutionEngine().run(fresh, input).output == expect);
}

TEST(WallClock, BrownOutShrinksBatchesUnderDeepQueue) {
  PlanStore store(isa_options(), shared_test_cache());
  const Graph g = small_ffn();
  const int m = store.add_model(g);

  WallClockConfig cfg;
  cfg.max_batch = 4;
  cfg.brownout = true;
  cfg.brownout_depth = 2;  // depth 2 -> level 1, 4 -> level 2, 6 -> level 3
  cfg.admission.admission_control = false;
  cfg.admission.max_queue_depth = 64;
  WallClockServer server(store, DispatchConfig{1, {1, 2, 4}}, cfg);
  server.warm(m);

  const uint64_t transitions_before =
      metrics::registry().counter("serve.wall.brownout_transitions").value();
  Rng rng(47);
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    server.submit(
        request(static_cast<uint64_t>(i), m,
                Tensor8::random(input_shape(g), rng)));
  }
  server.close();
  const auto done = server.serve();

  ASSERT_EQ(done.size(), static_cast<size_t>(kBurst));
  for (const WallServed& w : done) {
    // huge deadlines: brown-out degrades batching, never correctness
    EXPECT_EQ(w.outcome, ServeOutcome::kOk) << "request " << w.id;
    EXPECT_LE(w.group_size, 2)
        << "deep-queue dispatches must use brown-out-shrunk batches";
  }
  EXPECT_GT(
      metrics::registry().counter("serve.wall.brownout_transitions").value(),
      transitions_before);
  EXPECT_EQ(server.brownout_level(), 0) << "level decays once drained";
}

}  // namespace
}  // namespace decimate
