// Host kernel layer tests: the sparse N:M gather kernels and the blocked
// dense kernels must be bit-identical to the scalar reference ops — full
// range, arbitrary ranged slices (which must stitch exactly), and the
// reduction-split partial sums — across M in {4, 8, 16}, every NmPacked
// layout, and stride/pad edge cases. Plus the WorkerPool the engines run
// them on.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/aligned.hpp"
#include "common/rng.hpp"
#include "exec/worker_pool.hpp"
#include "nn/host_kernel_instances.hpp"
#include "nn/host_kernels.hpp"
#include "nn/prune.hpp"
#include "nn/ref_ops.hpp"
#include "testutil.hpp"

namespace decimate {
namespace {

using test::random_bias;
using test::random_sparse_weights;
using test::random_weights;
using test::test_requant;

struct ConvCase {
  ConvGeom g;
  const char* tag;
};

// stride/pad edge cases: pad >= filter reach (all-border output), 1x1,
// non-square input and filter, strided, and a "normal" 3x3
const std::vector<ConvCase> kConvCases = {
    {{8, 8, 16, 8, 3, 3, 1, 1}, "3x3 pad1"},
    {{8, 8, 16, 8, 1, 1, 1, 0}, "1x1"},
    {{9, 7, 16, 6, 3, 2, 1, 1}, "non-square"},
    {{8, 8, 16, 8, 3, 3, 2, 1}, "stride2"},
    {{4, 4, 16, 4, 3, 3, 1, 3}, "pad >= reach"},
    {{6, 6, 32, 10, 5, 5, 1, 2}, "5x5"},
    {{5, 5, 16, 3, 5, 5, 1, 4}, "pad4 tiny"},
};

Tensor8 conv_weights(const ConvGeom& g, int m, Rng& rng) {
  return m == 0 ? random_weights(g.k, g.fsz(), rng)
                : random_sparse_weights(g.k, g.fsz(), m, rng);
}

HostKernelDispatch conv_dispatch(const ConvGeom& g, const Tensor8& w, int m,
                                 NmLayout layout = NmLayout::kSw) {
  if (m == 0) return host_dispatch_for_conv(g, nullptr);
  const NmPacked packed = nm_pack(w.flat(), g.k, g.fsz(), m, layout);
  return host_dispatch_for_conv(g, &packed);
}

TEST(HostKernels, ConvBitExactAcrossGeometriesAndM) {
  Rng rng(101);
  for (const ConvCase& cc : kConvCases) {
    const ConvGeom& g = cc.g;
    const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
    const Tensor32 bias = random_bias(g.k, rng);
    const Requant rq = test_requant();
    for (const int m : {0, 4, 8, 16}) {
      if (m != 0 && g.fsz() % m != 0) continue;
      const Tensor8 w = conv_weights(g, m, rng);
      const HostKernelDispatch d = conv_dispatch(g, w, m);
      const Tensor8 ref = conv2d_s8(input, w, bias, g, rq);
      const Tensor8 host = host_conv2d_s8(d, input, w, bias, g, rq);
      EXPECT_TRUE(host == ref) << cc.tag << " m=" << m;
    }
  }
}

TEST(HostKernels, ConvRangedSlicesStitchBitExactly) {
  Rng rng(102);
  for (const ConvCase& cc : kConvCases) {
    const ConvGeom& g = cc.g;
    const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
    const Tensor32 bias = random_bias(g.k, rng);
    const Requant rq = test_requant();
    for (const int m : {0, 4}) {
      if (m != 0 && g.fsz() % m != 0) continue;
      const Tensor8 w = conv_weights(g, m, rng);
      const HostKernelDispatch d = conv_dispatch(g, w, m);
      const Tensor8 ref = conv2d_s8(input, w, bias, g, rq);

      // carve the output into uneven (oy, k) rectangles and stitch
      Tensor8 out({g.oy(), g.ox(), g.k});
      const int oy_mid = g.oy() / 3, k_mid = std::max(1, g.k / 2) ;
      for (const auto& [oy_r, k_r] :
           std::vector<std::pair<std::pair<int, int>, std::pair<int, int>>>{
               {{0, oy_mid}, {0, g.k}},
               {{oy_mid, g.oy()}, {0, k_mid}},
               {{oy_mid, g.oy()}, {k_mid, g.k}}}) {
        host_conv2d_s8_into(d, input, w, bias, g, rq, oy_r.first, oy_r.second,
                            k_r.first, k_r.second, out);
      }
      EXPECT_TRUE(out == ref) << cc.tag << " m=" << m;
    }
  }
}

TEST(HostKernels, ConvDecodesEveryNmLayout) {
  Rng rng(103);
  const ConvGeom g{8, 8, 16, 8, 3, 3, 1, 1};
  const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
  const Tensor32 bias = random_bias(g.k, rng);
  const Requant rq = test_requant();
  for (const int m : {4, 8, 16}) {
    const Tensor8 w = conv_weights(g, m, rng);
    const Tensor8 ref = conv2d_s8(input, w, bias, g, rq);
    for (const NmLayout layout :
         {NmLayout::kSw, NmLayout::kConvIsaDup, NmLayout::kFcIsaInterleaved}) {
      const HostKernelDispatch d = conv_dispatch(g, w, m, layout);
      EXPECT_TRUE(host_conv2d_s8(d, input, w, bias, g, rq) == ref)
          << "m=" << m << " layout=" << nm_layout_name(layout);
    }
  }
}

TEST(HostKernels, FcBitExactDenseAndSparse) {
  Rng rng(104);
  for (const auto& [tokens, c, k] :
       std::vector<std::tuple<int, int, int>>{
           {1, 64, 10}, {7, 64, 9}, {13, 128, 32}, {4, 48, 6}}) {
    const Tensor8 input = Tensor8::random({tokens, c}, rng);
    const Tensor32 bias = random_bias(k, rng);
    const Requant rq = test_requant();
    for (const int m : {0, 4, 8, 16}) {
      if (m != 0 && c % m != 0) continue;
      const Tensor8 w = m == 0 ? random_weights(k, c, rng)
                               : random_sparse_weights(k, c, m, rng);
      const NmPacked packed =
          m == 0 ? NmPacked{} : nm_pack(w.flat(), k, c, m, NmLayout::kSw);
      const HostKernelDispatch d =
          host_dispatch_for_fc(k, c, m == 0 ? nullptr : &packed);
      const Tensor8 ref = fc_s8(input, w, bias, rq);
      EXPECT_TRUE(host_fc_s8(d, input, w, bias, rq) == ref)
          << "t=" << tokens << " c=" << c << " k=" << k << " m=" << m;

      // ranged slices (odd token split exercises the 4-token remainder)
      Tensor8 out({tokens, k});
      const int t_mid = tokens / 2, k_mid = k / 2;
      host_fc_s8_into(d, input, w, bias, rq, 0, t_mid, 0, k, out);
      host_fc_s8_into(d, input, w, bias, rq, t_mid, tokens, 0, k_mid, out);
      host_fc_s8_into(d, input, w, bias, rq, t_mid, tokens, k_mid, k, out);
      EXPECT_TRUE(out == ref) << "ranged t=" << tokens << " m=" << m;
    }
  }
}

TEST(HostKernels, FcPartialSumsReproduceTheReductionSplit) {
  Rng rng(105);
  const int tokens = 5, c = 96, k = 11;
  const Tensor8 input = Tensor8::random({tokens, c}, rng);
  const Tensor32 bias = random_bias(k, rng);
  const Requant rq = test_requant();
  for (const int m : {0, 4, 8}) {
    const Tensor8 w = m == 0 ? random_weights(k, c, rng)
                             : random_sparse_weights(k, c, m, rng);
    const NmPacked packed =
        m == 0 ? NmPacked{} : nm_pack(w.flat(), k, c, m, NmLayout::kSw);
    const HostKernelDispatch d =
        host_dispatch_for_fc(k, c, m == 0 ? nullptr : &packed);
    const Tensor8 ref = fc_s8(input, w, bias, rq);

    // split the reduction axis unevenly, sum partials in range order on
    // top of the bias, requant once — must equal the unsplit kernel, and
    // each partial must equal the reference partial
    const std::vector<std::pair<int, int>> splits = {{0, 40}, {40, 41},
                                                     {41, c}};
    Tensor8 reduced({tokens, k});
    std::vector<Tensor32> partials;
    for (const auto& [c_s, c_e] : splits) {
      partials.push_back(host_fc_s32_partial(d, input, w, c_s, c_e));
      EXPECT_TRUE(partials.back() == fc_s32_partial(input, w, c_s, c_e))
          << "m=" << m << " range [" << c_s << "," << c_e << ")";
    }
    for (int ti = 0; ti < tokens; ++ti) {
      for (int ki = 0; ki < k; ++ki) {
        int32_t acc = bias[ki];
        for (const Tensor32& p : partials) acc += p.at({ti, ki});
        reduced.at({ti, ki}) = rq.apply(acc);
      }
    }
    EXPECT_TRUE(reduced == ref) << "m=" << m;
  }
}

TEST(HostKernels, FuzzRandomGeometries) {
  Rng rng(106);
  for (int iter = 0; iter < 60; ++iter) {
    ConvGeom g;
    g.c = 4 << rng.uniform_int(0, 3);  // 4..32
    g.k = rng.uniform_int(1, 12);
    g.fx = rng.uniform_int(1, 4);
    g.fy = rng.uniform_int(1, 4);
    g.stride = rng.uniform_int(1, 2);
    g.pad = rng.uniform_int(0, 4);
    g.ix = rng.uniform_int(std::max(1, g.fx - 2 * g.pad), 9);
    g.iy = rng.uniform_int(std::max(1, g.fy - 2 * g.pad), 9);
    if (g.ix + 2 * g.pad < g.fx || g.iy + 2 * g.pad < g.fy) continue;
    const int m_pick = rng.uniform_int(0, 3);
    const int m = m_pick == 0 ? 0 : (2 << m_pick);  // 0, 4, 8, 16
    if (m != 0 && g.fsz() % m != 0) continue;

    const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
    const Tensor8 w = conv_weights(g, m, rng);
    const Tensor32 bias = random_bias(g.k, rng);
    const Requant rq = test_requant();
    const HostKernelDispatch d = conv_dispatch(g, w, m);
    const Tensor8 ref = conv2d_s8(input, w, bias, g, rq);
    ASSERT_TRUE(host_conv2d_s8(d, input, w, bias, g, rq) == ref)
        << "iter " << iter << ": ix=" << g.ix << " iy=" << g.iy
        << " c=" << g.c << " k=" << g.k << " f=" << g.fx << "x" << g.fy
        << " s=" << g.stride << " p=" << g.pad << " m=" << m;
  }
}

TEST(HostKernels, DispatchDropsExplicitZeroValues) {
  // rows whose blocks are entirely zero must simply vanish from the
  // gather plan (a stored 0 value contributes nothing)
  Rng rng(107);
  const int k = 4, c = 32, m = 4;
  Tensor8 w({k, c}, 0);  // all-zero: trivially 1:4 sparse
  const NmPacked packed = nm_pack(w.flat(), k, c, m, NmLayout::kSw);
  const HostKernelDispatch d = host_dispatch_for_fc(k, c, &packed);
  EXPECT_EQ(d.nz_total(), 0);
  const Tensor8 input = Tensor8::random({3, c}, rng);
  const Tensor32 bias = random_bias(k, rng);
  const Tensor8 ref = fc_s8(input, w, bias, test_requant());
  EXPECT_TRUE(host_fc_s8(d, input, w, bias, test_requant()) == ref);
}

TEST(HostKernels, BackingStorageIs64ByteAligned) {
  // the SIMD instances use unaligned loads (loadu) so alignment is never
  // a correctness requirement, but 64B-aligned rows keep vector loads off
  // cache-line splits — pin the allocator so a regression is loud
  Rng rng(108);
  const Tensor8 t8 = Tensor8::random({5, 7, 16}, rng);
  const Tensor32 t32({33}, 1);
  EXPECT_TRUE(host_aligned(t8.data()));
  EXPECT_TRUE(host_aligned(t32.data()));

  const ConvGeom g{8, 8, 16, 8, 3, 3, 1, 1};
  const Tensor8 w = random_sparse_weights(g.k, g.fsz(), 4, rng);
  const NmPacked packed = nm_pack(w.flat(), g.k, g.fsz(), 4, NmLayout::kSw);
  const HostKernelDispatch d = host_dispatch_for_conv(g, &packed);
  EXPECT_TRUE(host_aligned(d.val.data()));
  EXPECT_TRUE(host_aligned(d.ci.data()));
  const HostKernelDispatch df = host_dispatch_for_fc(10, 64, nullptr);
  (void)df;
  const Tensor8 wf = random_sparse_weights(10, 64, 4, rng);
  const NmPacked pf = nm_pack(wf.flat(), 10, 64, 4, NmLayout::kSw);
  const HostKernelDispatch ds = host_dispatch_for_fc(10, 64, &pf);
  EXPECT_TRUE(host_aligned(ds.val.data()));
  EXPECT_TRUE(host_aligned(ds.col.data()));
}

// Restores the ISA cap on scope exit so a failing assertion can't leak a
// scalar clamp into later tests.
struct IsaCapGuard {
  explicit IsaCapGuard(HostIsa cap) { set_host_isa_cap(cap); }
  ~IsaCapGuard() { set_host_isa_cap(HostIsa::kAvx512Vnni); }
};

// Every registry instance runnable on this CPU, forced onto every
// geometry of its family — including ones its selection predicate would
// route away from (c % 16 != 0, width-1 interiors, stride 2, M=2) — must
// be bit-identical to the scalar reference. Predicates are performance
// heuristics, never correctness gates.
TEST(HostKernels, EveryConvInstanceBitExactOnOddGeometries) {
  Rng rng(201);
  const std::vector<ConvCase> cases = {
      {{8, 8, 16, 8, 3, 3, 1, 1}, "3x3 pad1"},
      {{8, 8, 20, 6, 3, 3, 1, 1}, "c=20 not divisible by 16"},
      {{3, 3, 16, 4, 3, 3, 1, 1}, "width-1 interior"},
      {{8, 8, 16, 8, 3, 3, 2, 1}, "stride2 (sparse pix16 self-gates)"},
      {{7, 9, 24, 5, 3, 5, 1, 2}, "non-square 3x5"},
      {{6, 6, 4, 7, 1, 1, 1, 0}, "1x1 c=4 scalar-tail only"},
  };
  for (const ConvCase& cc : cases) {
    const ConvGeom& g = cc.g;
    const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
    const Tensor32 bias = random_bias(g.k, rng);
    const Requant rq = test_requant();
    for (const int m : {0, 2, 4, 8, 16}) {
      if (m != 0 && g.fsz() % m != 0) continue;
      const Tensor8 w = conv_weights(g, m, rng);
      const Tensor8 ref = conv2d_s8(input, w, bias, g, rq);
      const std::vector<NmLayout> layouts =
          m == 0 ? std::vector<NmLayout>{NmLayout::kSw}
                 : std::vector<NmLayout>{NmLayout::kSw, NmLayout::kConvIsaDup,
                                         NmLayout::kFcIsaInterleaved};
      for (const NmLayout layout : layouts) {
        if (m != 0 && layout == NmLayout::kFcIsaInterleaved && g.k % 2 != 0) {
          continue;  // interleaved layout needs an even channel count
        }
        HostKernelDispatch d = conv_dispatch(g, w, m, layout);
        for (int id = 0; id < host_instance_count(); ++id) {
          const HostInstanceInfo& info = host_instance_info(id);
          if (info.family != d.impl) continue;
          if (info.isa > host_isa_detected()) continue;
          host_force_instance(d, id);
          ASSERT_TRUE(host_conv2d_s8(d, input, w, bias, g, rq) == ref)
              << cc.tag << " m=" << m << " layout=" << nm_layout_name(layout)
              << " instance=" << info.name;
        }
      }
    }
  }
}

TEST(HostKernels, EveryFcInstanceBitExactOnOddGeometries) {
  Rng rng(202);
  // tokens below/at/above the 16-token transpose block, c not divisible
  // by 16, k odd (kills the 2x2/4-row unrolls' even assumption), M=2
  for (const auto& [tokens, c, k] : std::vector<std::tuple<int, int, int>>{
           {1, 64, 10}, {3, 20, 7}, {16, 48, 11}, {17, 16, 2}, {33, 40, 9}}) {
    const Tensor8 input = Tensor8::random({tokens, c}, rng);
    const Tensor32 bias = random_bias(k, rng);
    const Requant rq = test_requant();
    for (const int m : {0, 2, 4, 8, 16}) {
      if (m != 0 && c % m != 0) continue;
      const Tensor8 w = m == 0 ? random_weights(k, c, rng)
                               : random_sparse_weights(k, c, m, rng);
      const Tensor8 ref = fc_s8(input, w, bias, rq);
      const std::vector<NmLayout> layouts =
          m == 0 ? std::vector<NmLayout>{NmLayout::kSw}
                 : std::vector<NmLayout>{NmLayout::kSw, NmLayout::kConvIsaDup,
                                         NmLayout::kFcIsaInterleaved};
      for (const NmLayout layout : layouts) {
        if (m != 0 && layout == NmLayout::kFcIsaInterleaved && k % 2 != 0) {
          continue;
        }
        const NmPacked packed =
            m == 0 ? NmPacked{} : nm_pack(w.flat(), k, c, m, layout);
        HostKernelDispatch d =
            host_dispatch_for_fc(k, c, m == 0 ? nullptr : &packed, tokens);
        for (int id = 0; id < host_instance_count(); ++id) {
          const HostInstanceInfo& info = host_instance_info(id);
          if (info.family != d.impl) continue;
          if (info.isa > host_isa_detected()) continue;
          host_force_instance(d, id);
          ASSERT_TRUE(host_fc_s8(d, input, w, bias, rq) == ref)
              << "t=" << tokens << " c=" << c << " k=" << k << " m=" << m
              << " layout=" << nm_layout_name(layout)
              << " instance=" << info.name;

          // ranged slices must stitch bit-exactly per instance too (the
          // engine's intra-image split runs exactly these)
          Tensor8 out({tokens, k});
          const int t_mid = tokens / 2, k_mid = k / 2;
          host_fc_s8_into(d, input, w, bias, rq, 0, t_mid, 0, k, out);
          host_fc_s8_into(d, input, w, bias, rq, t_mid, tokens, 0, k_mid, out);
          host_fc_s8_into(d, input, w, bias, rq, t_mid, tokens, k_mid, k, out);
          ASSERT_TRUE(out == ref)
              << "ranged t=" << tokens << " m=" << m
              << " instance=" << info.name;
        }
      }
    }
  }
}

TEST(HostKernels, ScalarIsaCapForcesScalarSelectionBitExactly) {
  // clamp selection to the scalar tier: newly built dispatches must pick
  // the scalar instances and still match the reference — this is the
  // "plan compiled on a capable machine, forced to scalar" guarantee
  const IsaCapGuard guard(HostIsa::kScalar);
  EXPECT_EQ(host_isa(), HostIsa::kScalar);
  Rng rng(203);
  const ConvGeom g{8, 8, 32, 8, 3, 3, 1, 1};
  const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
  const Tensor32 bias = random_bias(g.k, rng);
  const Requant rq = test_requant();
  for (const int m : {0, 4}) {
    const Tensor8 w = conv_weights(g, m, rng);
    const HostKernelDispatch d = conv_dispatch(g, w, m);
    EXPECT_NE(std::string(host_instance_name(d)).find("scalar"),
              std::string::npos)
        << host_instance_name(d);
    EXPECT_TRUE(host_conv2d_s8(d, input, w, bias, g, rq) ==
                conv2d_s8(input, w, bias, g, rq))
        << "m=" << m;
  }
}

TEST(HostKernels, InstanceRegistryIsWellFormed) {
  ASSERT_GT(host_instance_count(), 0);
  // every family must end in a scalar guaranteed-fallback instance
  bool scalar_seen[5] = {};  // indexed by HostImpl (kRefFallback unused)
  for (int id = 0; id < host_instance_count(); ++id) {
    const HostInstanceInfo& info = host_instance_info(id);
    EXPECT_NE(info.name, nullptr);
    EXPECT_NE(info.geometry, nullptr);
    if (info.isa == HostIsa::kScalar) {
      scalar_seen[static_cast<int>(info.family)] = true;
    }
  }
  for (const HostImpl fam :
       {HostImpl::kDenseConv, HostImpl::kSparseConv, HostImpl::kDenseFc,
        HostImpl::kSparseFc}) {
    EXPECT_TRUE(scalar_seen[static_cast<int>(fam)])
        << "family " << static_cast<int>(fam) << " has no scalar fallback";
  }
}

TEST(WorkerPool, RunsEveryTaskExactlyOnceAndIsReusable) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.threads(), 3);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<int>> hits(17);
    pool.run(17, [&](int i) { hits[static_cast<size_t>(i)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerPool, ZeroThreadPoolRunsInline) {
  WorkerPool pool(0);
  std::vector<int> order;
  pool.run(4, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(WorkerPool, NestedSubmissionRunsInlineWithoutDeadlock) {
  // a task that re-enters pool.run (engine intra-image split inside a
  // run_batch image task) must execute the nested job inline on the
  // calling worker — never re-acquire the job lock or oversubscribe
  WorkerPool pool(2);
  EXPECT_FALSE(WorkerPool::in_task());
  std::atomic<int> inner_hits{0};
  std::atomic<int> inline_depth_ok{0};
  pool.run(4, [&](int) {
    EXPECT_TRUE(WorkerPool::in_task());
    pool.run(3, [&](int) {
      if (WorkerPool::in_task()) inline_depth_ok++;
      inner_hits++;
    });
  });
  EXPECT_FALSE(WorkerPool::in_task());
  EXPECT_EQ(inner_hits.load(), 12);
  EXPECT_EQ(inline_depth_ok.load(), 12);

  // nested exceptions propagate straight to the submitting task
  EXPECT_THROW(
      pool.run(2,
               [&](int) {
                 pool.run(2, [](int i) {
                   if (i == 1) throw std::runtime_error("nested boom");
                 });
               }),
      std::runtime_error);
  // and the pool stays usable
  std::atomic<int> ok{0};
  pool.run(5, [&](int) { ok++; });
  EXPECT_EQ(ok.load(), 5);
}

TEST(WorkerPool, PropagatesTheFirstTaskException) {
  WorkerPool pool(2);
  std::atomic<int> done{0};
  EXPECT_THROW(
      pool.run(8,
               [&](int i) {
                 if (i == 3) throw std::runtime_error("task 3 failed");
                 done++;
               }),
      std::runtime_error);
  EXPECT_EQ(done.load(), 7);  // claimed tasks still drain
  // the pool stays usable after a failed job
  std::atomic<int> ok{0};
  pool.run(4, [&](int) { ok++; });
  EXPECT_EQ(ok.load(), 4);
}

}  // namespace
}  // namespace decimate
