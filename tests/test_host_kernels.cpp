// Host kernel layer tests: the sparse N:M gather kernels and the blocked
// dense kernels must be bit-identical to the scalar reference ops — full
// range, arbitrary ranged slices (which must stitch exactly), and the
// reduction-split partial sums — across M in {4, 8, 16}, every NmPacked
// layout, and stride/pad edge cases. Plus the WorkerPool the engines run
// them on.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "common/rng.hpp"
#include "exec/worker_pool.hpp"
#include "nn/host_kernels.hpp"
#include "nn/prune.hpp"
#include "nn/ref_ops.hpp"
#include "testutil.hpp"

namespace decimate {
namespace {

using test::random_bias;
using test::random_sparse_weights;
using test::random_weights;
using test::test_requant;

struct ConvCase {
  ConvGeom g;
  const char* tag;
};

// stride/pad edge cases: pad >= filter reach (all-border output), 1x1,
// non-square input and filter, strided, and a "normal" 3x3
const std::vector<ConvCase> kConvCases = {
    {{8, 8, 16, 8, 3, 3, 1, 1}, "3x3 pad1"},
    {{8, 8, 16, 8, 1, 1, 1, 0}, "1x1"},
    {{9, 7, 16, 6, 3, 2, 1, 1}, "non-square"},
    {{8, 8, 16, 8, 3, 3, 2, 1}, "stride2"},
    {{4, 4, 16, 4, 3, 3, 1, 3}, "pad >= reach"},
    {{6, 6, 32, 10, 5, 5, 1, 2}, "5x5"},
    {{5, 5, 16, 3, 5, 5, 1, 4}, "pad4 tiny"},
};

Tensor8 conv_weights(const ConvGeom& g, int m, Rng& rng) {
  return m == 0 ? random_weights(g.k, g.fsz(), rng)
                : random_sparse_weights(g.k, g.fsz(), m, rng);
}

HostKernelDispatch conv_dispatch(const ConvGeom& g, const Tensor8& w, int m,
                                 NmLayout layout = NmLayout::kSw) {
  if (m == 0) return host_dispatch_for_conv(g, nullptr);
  const NmPacked packed = nm_pack(w.flat(), g.k, g.fsz(), m, layout);
  return host_dispatch_for_conv(g, &packed);
}

TEST(HostKernels, ConvBitExactAcrossGeometriesAndM) {
  Rng rng(101);
  for (const ConvCase& cc : kConvCases) {
    const ConvGeom& g = cc.g;
    const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
    const Tensor32 bias = random_bias(g.k, rng);
    const Requant rq = test_requant();
    for (const int m : {0, 4, 8, 16}) {
      if (m != 0 && g.fsz() % m != 0) continue;
      const Tensor8 w = conv_weights(g, m, rng);
      const HostKernelDispatch d = conv_dispatch(g, w, m);
      const Tensor8 ref = conv2d_s8(input, w, bias, g, rq);
      const Tensor8 host = host_conv2d_s8(d, input, w, bias, g, rq);
      EXPECT_TRUE(host == ref) << cc.tag << " m=" << m;
    }
  }
}

TEST(HostKernels, ConvRangedSlicesStitchBitExactly) {
  Rng rng(102);
  for (const ConvCase& cc : kConvCases) {
    const ConvGeom& g = cc.g;
    const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
    const Tensor32 bias = random_bias(g.k, rng);
    const Requant rq = test_requant();
    for (const int m : {0, 4}) {
      if (m != 0 && g.fsz() % m != 0) continue;
      const Tensor8 w = conv_weights(g, m, rng);
      const HostKernelDispatch d = conv_dispatch(g, w, m);
      const Tensor8 ref = conv2d_s8(input, w, bias, g, rq);

      // carve the output into uneven (oy, k) rectangles and stitch
      Tensor8 out({g.oy(), g.ox(), g.k});
      const int oy_mid = g.oy() / 3, k_mid = std::max(1, g.k / 2) ;
      for (const auto& [oy_r, k_r] :
           std::vector<std::pair<std::pair<int, int>, std::pair<int, int>>>{
               {{0, oy_mid}, {0, g.k}},
               {{oy_mid, g.oy()}, {0, k_mid}},
               {{oy_mid, g.oy()}, {k_mid, g.k}}}) {
        host_conv2d_s8_into(d, input, w, bias, g, rq, oy_r.first, oy_r.second,
                            k_r.first, k_r.second, out);
      }
      EXPECT_TRUE(out == ref) << cc.tag << " m=" << m;
    }
  }
}

TEST(HostKernels, ConvDecodesEveryNmLayout) {
  Rng rng(103);
  const ConvGeom g{8, 8, 16, 8, 3, 3, 1, 1};
  const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
  const Tensor32 bias = random_bias(g.k, rng);
  const Requant rq = test_requant();
  for (const int m : {4, 8, 16}) {
    const Tensor8 w = conv_weights(g, m, rng);
    const Tensor8 ref = conv2d_s8(input, w, bias, g, rq);
    for (const NmLayout layout :
         {NmLayout::kSw, NmLayout::kConvIsaDup, NmLayout::kFcIsaInterleaved}) {
      const HostKernelDispatch d = conv_dispatch(g, w, m, layout);
      EXPECT_TRUE(host_conv2d_s8(d, input, w, bias, g, rq) == ref)
          << "m=" << m << " layout=" << nm_layout_name(layout);
    }
  }
}

TEST(HostKernels, FcBitExactDenseAndSparse) {
  Rng rng(104);
  for (const auto& [tokens, c, k] :
       std::vector<std::tuple<int, int, int>>{
           {1, 64, 10}, {7, 64, 9}, {13, 128, 32}, {4, 48, 6}}) {
    const Tensor8 input = Tensor8::random({tokens, c}, rng);
    const Tensor32 bias = random_bias(k, rng);
    const Requant rq = test_requant();
    for (const int m : {0, 4, 8, 16}) {
      if (m != 0 && c % m != 0) continue;
      const Tensor8 w = m == 0 ? random_weights(k, c, rng)
                               : random_sparse_weights(k, c, m, rng);
      const NmPacked packed =
          m == 0 ? NmPacked{} : nm_pack(w.flat(), k, c, m, NmLayout::kSw);
      const HostKernelDispatch d =
          host_dispatch_for_fc(k, c, m == 0 ? nullptr : &packed);
      const Tensor8 ref = fc_s8(input, w, bias, rq);
      EXPECT_TRUE(host_fc_s8(d, input, w, bias, rq) == ref)
          << "t=" << tokens << " c=" << c << " k=" << k << " m=" << m;

      // ranged slices (odd token split exercises the 4-token remainder)
      Tensor8 out({tokens, k});
      const int t_mid = tokens / 2, k_mid = k / 2;
      host_fc_s8_into(d, input, w, bias, rq, 0, t_mid, 0, k, out);
      host_fc_s8_into(d, input, w, bias, rq, t_mid, tokens, 0, k_mid, out);
      host_fc_s8_into(d, input, w, bias, rq, t_mid, tokens, k_mid, k, out);
      EXPECT_TRUE(out == ref) << "ranged t=" << tokens << " m=" << m;
    }
  }
}

TEST(HostKernels, FcPartialSumsReproduceTheReductionSplit) {
  Rng rng(105);
  const int tokens = 5, c = 96, k = 11;
  const Tensor8 input = Tensor8::random({tokens, c}, rng);
  const Tensor32 bias = random_bias(k, rng);
  const Requant rq = test_requant();
  for (const int m : {0, 4, 8}) {
    const Tensor8 w = m == 0 ? random_weights(k, c, rng)
                             : random_sparse_weights(k, c, m, rng);
    const NmPacked packed =
        m == 0 ? NmPacked{} : nm_pack(w.flat(), k, c, m, NmLayout::kSw);
    const HostKernelDispatch d =
        host_dispatch_for_fc(k, c, m == 0 ? nullptr : &packed);
    const Tensor8 ref = fc_s8(input, w, bias, rq);

    // split the reduction axis unevenly, sum partials in range order on
    // top of the bias, requant once — must equal the unsplit kernel, and
    // each partial must equal the reference partial
    const std::vector<std::pair<int, int>> splits = {{0, 40}, {40, 41},
                                                     {41, c}};
    Tensor8 reduced({tokens, k});
    std::vector<Tensor32> partials;
    for (const auto& [c_s, c_e] : splits) {
      partials.push_back(host_fc_s32_partial(d, input, w, c_s, c_e));
      EXPECT_TRUE(partials.back() == fc_s32_partial(input, w, c_s, c_e))
          << "m=" << m << " range [" << c_s << "," << c_e << ")";
    }
    for (int ti = 0; ti < tokens; ++ti) {
      for (int ki = 0; ki < k; ++ki) {
        int32_t acc = bias[ki];
        for (const Tensor32& p : partials) acc += p.at({ti, ki});
        reduced.at({ti, ki}) = rq.apply(acc);
      }
    }
    EXPECT_TRUE(reduced == ref) << "m=" << m;
  }
}

TEST(HostKernels, FuzzRandomGeometries) {
  Rng rng(106);
  for (int iter = 0; iter < 60; ++iter) {
    ConvGeom g;
    g.c = 4 << rng.uniform_int(0, 3);  // 4..32
    g.k = rng.uniform_int(1, 12);
    g.fx = rng.uniform_int(1, 4);
    g.fy = rng.uniform_int(1, 4);
    g.stride = rng.uniform_int(1, 2);
    g.pad = rng.uniform_int(0, 4);
    g.ix = rng.uniform_int(std::max(1, g.fx - 2 * g.pad), 9);
    g.iy = rng.uniform_int(std::max(1, g.fy - 2 * g.pad), 9);
    if (g.ix + 2 * g.pad < g.fx || g.iy + 2 * g.pad < g.fy) continue;
    const int m_pick = rng.uniform_int(0, 3);
    const int m = m_pick == 0 ? 0 : (2 << m_pick);  // 0, 4, 8, 16
    if (m != 0 && g.fsz() % m != 0) continue;

    const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
    const Tensor8 w = conv_weights(g, m, rng);
    const Tensor32 bias = random_bias(g.k, rng);
    const Requant rq = test_requant();
    const HostKernelDispatch d = conv_dispatch(g, w, m);
    const Tensor8 ref = conv2d_s8(input, w, bias, g, rq);
    ASSERT_TRUE(host_conv2d_s8(d, input, w, bias, g, rq) == ref)
        << "iter " << iter << ": ix=" << g.ix << " iy=" << g.iy
        << " c=" << g.c << " k=" << g.k << " f=" << g.fx << "x" << g.fy
        << " s=" << g.stride << " p=" << g.pad << " m=" << m;
  }
}

TEST(HostKernels, DispatchDropsExplicitZeroValues) {
  // rows whose blocks are entirely zero must simply vanish from the
  // gather plan (a stored 0 value contributes nothing)
  Rng rng(107);
  const int k = 4, c = 32, m = 4;
  Tensor8 w({k, c}, 0);  // all-zero: trivially 1:4 sparse
  const NmPacked packed = nm_pack(w.flat(), k, c, m, NmLayout::kSw);
  const HostKernelDispatch d = host_dispatch_for_fc(k, c, &packed);
  EXPECT_EQ(d.nz_total(), 0);
  const Tensor8 input = Tensor8::random({3, c}, rng);
  const Tensor32 bias = random_bias(k, rng);
  const Tensor8 ref = fc_s8(input, w, bias, test_requant());
  EXPECT_TRUE(host_fc_s8(d, input, w, bias, test_requant()) == ref);
}

TEST(WorkerPool, RunsEveryTaskExactlyOnceAndIsReusable) {
  WorkerPool pool(3);
  EXPECT_EQ(pool.threads(), 3);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::atomic<int>> hits(17);
    pool.run(17, [&](int i) { hits[static_cast<size_t>(i)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(WorkerPool, ZeroThreadPoolRunsInline) {
  WorkerPool pool(0);
  std::vector<int> order;
  pool.run(4, [&](int i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(WorkerPool, PropagatesTheFirstTaskException) {
  WorkerPool pool(2);
  std::atomic<int> done{0};
  EXPECT_THROW(
      pool.run(8,
               [&](int i) {
                 if (i == 3) throw std::runtime_error("task 3 failed");
                 done++;
               }),
      std::runtime_error);
  EXPECT_EQ(done.load(), 7);  // claimed tasks still drain
  // the pool stays usable after a failed job
  std::atomic<int> ok{0};
  pool.run(4, [&](int) { ok++; });
  EXPECT_EQ(ok.load(), 4);
}

}  // namespace
}  // namespace decimate
