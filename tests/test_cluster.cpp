#include "sim/cluster.hpp"

#include <gtest/gtest.h>

#include "isa/builder.hpp"
#include "sim/dma.hpp"

namespace decimate {
namespace {

using namespace reg;

/// Each core writes its hartid at L1[base + 4*hartid], then barriers, then
/// core 0's neighbour sum is checked by the host.
Program make_parallel_program() {
  KernelBuilder b;
  b.hartid(t0);
  b.slli(t1, t0, 2);
  b.li(t2, static_cast<int32_t>(MemoryMap::kL1Base));
  b.add(t2, t2, t1);
  b.sw(t0, 0, t2);
  b.barrier();
  b.halt();
  return b.build();
}

TEST(Cluster, AllCoresRunAndBarrier) {
  Cluster cluster(ClusterConfig{});
  const RunResult res = cluster.run(make_parallel_program(), 0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(cluster.mem().read32(MemoryMap::kL1Base + 4 * i),
              static_cast<uint32_t>(i));
  }
  EXPECT_EQ(res.per_core.size(), 8u);
  EXPECT_GT(res.wall_cycles, 0u);
}

TEST(Cluster, WallCyclesIsMaxOverCoresPlusBarrier) {
  // Core i spins i*10 iterations; wall = slowest + barrier overhead.
  KernelBuilder b;
  b.hartid(t0);
  b.li(t1, 10);
  b.mul(t0, t0, t1);
  b.beq(t0, zero, "skip");
  b.bind("loop");
  b.addi(t0, t0, -1);
  b.bne(t0, zero, "loop");
  b.bind("skip");
  b.barrier();
  b.halt();
  ClusterConfig cfg;
  cfg.barrier_cycles = 8;
  Cluster cluster(cfg);
  const RunResult res = cluster.run(b.build(), 0);
  uint64_t max_cycles = 0;
  for (const auto& cs : res.per_core) {
    max_cycles = std::max(max_cycles, cs.cycles);
  }
  EXPECT_EQ(res.wall_cycles, max_cycles + 8);
}

TEST(Cluster, MultipleBarrierEpochs) {
  // Epoch 1: core writes hartid; epoch 2: core reads neighbour's value
  // (written before the barrier) and stores the sum.
  KernelBuilder b;
  b.hartid(t0);
  b.slli(t1, t0, 2);
  b.li(t2, static_cast<int32_t>(MemoryMap::kL1Base));
  b.add(t3, t2, t1);
  b.sw(t0, 0, t3);
  b.barrier();
  // neighbour = (hartid + 1) % 8 without division: mask with 7
  b.addi(t4, t0, 1);
  b.andi(t4, t4, 7);
  b.slli(t4, t4, 2);
  b.add(t4, t2, t4);
  b.lw(t5, 0, t4);
  b.add(t5, t5, t0);
  b.sw(t5, 64, t3);
  b.barrier();
  b.halt();
  Cluster cluster(ClusterConfig{});
  cluster.run(b.build(), 0);
  for (int i = 0; i < 8; ++i) {
    const uint32_t expect = static_cast<uint32_t>(i + (i + 1) % 8);
    EXPECT_EQ(cluster.mem().read32(MemoryMap::kL1Base + 64 + 4 * i), expect);
  }
}

TEST(Cluster, LockstepMatchesSequentialResults) {
  ClusterConfig seq_cfg;
  Cluster seq(seq_cfg);
  seq.run(make_parallel_program(), 0);
  ClusterConfig ls_cfg;
  ls_cfg.lockstep = true;
  Cluster ls(ls_cfg);
  ls.run(make_parallel_program(), 0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ls.mem().read32(MemoryMap::kL1Base + 4 * i),
              seq.mem().read32(MemoryMap::kL1Base + 4 * i));
  }
}

TEST(Cluster, LockstepBankConflictsAddStalls) {
  // All cores hammer the same word -> same bank -> contention stalls.
  KernelBuilder b;
  b.li(t2, static_cast<int32_t>(MemoryMap::kL1Base));
  b.li(t3, 64);
  b.bind("loop");
  b.lw(t4, 0, t2);  // same bank for every core
  b.addi(t3, t3, -1);
  b.bne(t3, zero, "loop");
  b.barrier();
  b.halt();
  const Program conflict_prog = b.build();

  // Variant: each core reads its own word in a different bank.
  KernelBuilder b2;
  b2.hartid(t0);
  b2.slli(t1, t0, 2);
  b2.li(t2, static_cast<int32_t>(MemoryMap::kL1Base));
  b2.add(t2, t2, t1);
  b2.li(t3, 64);
  b2.bind("loop");
  b2.lw(t4, 0, t2);
  b2.addi(t3, t3, -1);
  b2.bne(t3, zero, "loop");
  b2.barrier();
  b2.halt();
  const Program spread_prog = b2.build();

  ClusterConfig cfg;
  cfg.lockstep = true;
  Cluster c1(cfg);
  const RunResult conflicted = c1.run(conflict_prog, 0);
  Cluster c2(cfg);
  const RunResult spread = c2.run(spread_prog, 0);
  EXPECT_GT(conflicted.total_mem_stalls, 0u);
  EXPECT_EQ(spread.total_mem_stalls, 0u);
  EXPECT_GT(conflicted.wall_cycles, spread.wall_cycles);
}

TEST(Cluster, SingleCoreConfig) {
  ClusterConfig cfg;
  cfg.num_cores = 1;
  Cluster cluster(cfg);
  const RunResult res = cluster.run(make_parallel_program(), 0);
  EXPECT_EQ(res.per_core.size(), 1u);
  EXPECT_EQ(cluster.mem().read32(MemoryMap::kL1Base), 0u);
}

TEST(Dma, CostModelBasics) {
  SocMemory mem;
  DmaModel dma(mem);
  const auto& cfg = dma.config();
  EXPECT_EQ(dma.cost_1d(0, MemRegion::kL2, MemRegion::kL1), 0u);
  EXPECT_EQ(dma.cost_1d(800, MemRegion::kL2, MemRegion::kL1),
            cfg.l2_startup_cycles + 100);
  EXPECT_EQ(dma.cost_1d(100, MemRegion::kL3, MemRegion::kL2),
            cfg.l3_startup_cycles + 100);
  // 2D adds per-row overhead
  EXPECT_EQ(dma.cost_2d(10, 80, MemRegion::kL2, MemRegion::kL1),
            dma.cost_1d(800, MemRegion::kL2, MemRegion::kL1) +
                10 * cfg.per_row_cycles);
}

TEST(Dma, FunctionalCopiesMoveData) {
  SocMemory mem;
  DmaModel dma(mem);
  std::vector<uint8_t> src(256);
  for (size_t i = 0; i < src.size(); ++i) src[i] = static_cast<uint8_t>(i);
  mem.write_block(MemoryMap::kL2Base, src);
  const uint64_t cycles = dma.copy_1d(MemoryMap::kL1Base, MemoryMap::kL2Base, 256);
  EXPECT_GT(cycles, 0u);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(mem.read8(MemoryMap::kL1Base + i), static_cast<uint8_t>(i));
  }
}

TEST(Dma, Copy2dStridedGather) {
  SocMemory mem;
  DmaModel dma(mem);
  // 4 rows of 8 bytes with source stride 16 -> packed destination
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 8; ++c) {
      mem.write8(MemoryMap::kL2Base + r * 16 + c,
                 static_cast<uint8_t>(r * 8 + c));
    }
  }
  dma.copy_2d(MemoryMap::kL1Base, MemoryMap::kL2Base, 4, 8, 8, 16);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(mem.read8(MemoryMap::kL1Base + i), static_cast<uint8_t>(i));
  }
}

TEST(Memory, AlignmentEnforced) {
  SocMemory mem;
  EXPECT_THROW(mem.read32(MemoryMap::kL1Base + 2), Error);
  EXPECT_THROW(mem.read16(MemoryMap::kL1Base + 1), Error);
  EXPECT_THROW(mem.write32(MemoryMap::kL1Base + 1, 0), Error);
}

TEST(Memory, UnmappedAccessThrows) {
  SocMemory mem;
  EXPECT_THROW(mem.read8(0x0), Error);
  EXPECT_THROW(mem.read8(MemoryMap::kL1Base + MemoryMap::kL1Size), Error);
  EXPECT_THROW((void)mem.region(0x500), Error);
}

}  // namespace
}  // namespace decimate
