// Serving-runtime tests: SLO-aware batch formation on the virtual cycle
// timeline (straggler deadline flush, full-batch flush, drain), the
// Dispatcher's mode selection boundaries (loose SLO -> batch-fused, tight
// SLO -> sharded single-image, mid SLO over a deep burst ->
// data-parallel), oversize batches splitting into fused chunks, mixed
// ResNet18/ViT-FFN request streams keyed to different plans, PlanStore
// compile-once behavior, the structured run_batch mismatch error, and —
// everywhere — bit-exactness of every served output against a sequential
// ExecutionEngine::run.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <thread>

#include "compiler/fingerprint.hpp"
#include "exec/compile.hpp"
#include "exec/engine.hpp"
#include "models/models.hpp"
#include "serve/server.hpp"
#include "trace/metrics.hpp"

namespace decimate {
namespace {

CompileOptions isa_options() {
  CompileOptions opt;
  opt.enable_isa = true;
  return opt;
}

Graph scaled_resnet18() {
  Resnet18Options opt;
  opt.sparsity_m = 8;
  opt.input_hw = 16;
  return build_resnet18(opt);
}

Graph small_ffn() { return build_ffn_block(32, 64, 128, 8, 11); }

std::vector<int> input_shape(const Graph& g) { return g.node(0).out_shape; }

/// One latency cache for the whole binary: tile geometries repeat across
/// tests, so every unique tile is ISS-measured once per test run.
std::shared_ptr<TileLatencyCache> shared_test_cache() {
  static auto cache = std::make_shared<TileLatencyCache>();
  return cache;
}

/// Serving fixture: one PlanStore + Dispatcher shared per test, a fresh
/// Server per trace.
struct Harness {
  explicit Harness(int num_clusters, std::vector<int> fused = {1, 2, 4})
      : store(isa_options(), shared_test_cache()),
        dispatcher(store, DispatchConfig{num_clusters, std::move(fused)}) {}

  int add(const Graph& g) {
    const int id = store.add_model(g);
    dispatcher.warm(id);
    return id;
  }

  std::vector<Served> serve(const SloConfig& slo, std::vector<Request> trace) {
    Server server(dispatcher, slo);
    for (Request& r : trace) server.submit(std::move(r));
    server.close();
    return server.serve();
  }

  /// Every served output must match a sequential single-cluster run of
  /// the registered graph on the same input.
  void expect_bit_exact(const std::vector<Served>& served,
                        const std::vector<Request>& trace) {
    ExecutionEngine engine;
    std::map<uint64_t, const Request*> by_id;
    for (const Request& r : trace) by_id[r.id] = &r;
    ASSERT_EQ(served.size(), trace.size());
    for (const Served& s : served) {
      ASSERT_TRUE(by_id.count(s.stats.id)) << "unknown id " << s.stats.id;
      const Request& r = *by_id[s.stats.id];
      const NetworkRun ref =
          engine.run(store.plan(r.model, 1, 1), r.input);
      EXPECT_TRUE(s.output == ref.output)
          << "served output of request " << s.stats.id
          << " differs from sequential run (mode "
          << to_string(s.stats.mode) << ")";
    }
  }

  PlanStore store;
  Dispatcher dispatcher;
};

std::vector<Request> burst(int model, const std::vector<int>& shape, int n,
                           uint64_t arrival, uint64_t seed,
                           uint64_t first_id = 0) {
  Rng rng(seed);
  std::vector<Request> trace;
  for (int i = 0; i < n; ++i) {
    trace.push_back(Request{first_id + static_cast<uint64_t>(i), model,
                            arrival, Tensor8::random(shape, rng)});
  }
  return trace;
}

// --- queue / batcher edge cases ---------------------------------------------

TEST(Serve, EmptyQueueDrainReturnsNothing) {
  Harness h(1);
  const Graph g = small_ffn();
  h.add(g);
  Server server(h.dispatcher, SloConfig{100, 1000, 4});
  server.close();
  EXPECT_TRUE(server.serve().empty());
  EXPECT_EQ(server.batches_dispatched(), 0);
}

TEST(Serve, StragglerIsFlushedAtTheSloDeadline) {
  Harness h(1);
  const Graph g = small_ffn();
  const int m = h.add(g);
  const uint64_t total = h.store.plan(m, 1, 1).total_cycles;
  const uint64_t max_wait = total / 2 + 1;

  SloConfig slo;
  slo.max_wait_cycles = max_wait;
  slo.deadline_cycles = 100 * total;
  slo.max_batch = 4;

  // the straggler at 0 can never fill a batch: the only other request
  // arrives far beyond its flush deadline
  std::vector<Request> trace = burst(m, input_shape(g), 1, 0, 51);
  const uint64_t late = max_wait + 20 * total;
  auto tail = burst(m, input_shape(g), 1, late, 52, 1);
  trace.push_back(std::move(tail[0]));

  const auto served = h.serve(slo, trace);
  ASSERT_EQ(served.size(), 2u);
  const ServedStats& straggler = served[0].stats;
  EXPECT_EQ(straggler.id, 0u);
  EXPECT_EQ(straggler.dispatch_cycles, max_wait)
      << "a partial batch must flush exactly when the oldest request has "
         "waited max_wait_cycles";
  EXPECT_EQ(straggler.queue_wait_cycles(), max_wait);
  // the late request finds an idle engine and a closed stream: no wait
  EXPECT_EQ(served[1].stats.dispatch_cycles, late);
  EXPECT_EQ(served[1].stats.queue_wait_cycles(), 0u);
  h.expect_bit_exact(served, trace);
}

TEST(Serve, FullBatchDispatchesWithoutWaitingForTheDeadline) {
  Harness h(1);
  const Graph g = small_ffn();
  const int m = h.add(g);
  SloConfig slo;
  slo.max_wait_cycles = 1'000'000'000;  // deadline flush would be absurd
  slo.deadline_cycles = UINT64_MAX;
  slo.max_batch = 4;

  const auto trace = burst(m, input_shape(g), 4, 123, 53);
  const auto served = h.serve(slo, trace);
  ASSERT_EQ(served.size(), 4u);
  for (const Served& s : served) {
    EXPECT_EQ(s.stats.dispatch_cycles, 123u)
        << "a full batch dispatches at the last member's arrival";
  }
  h.expect_bit_exact(served, trace);
}

TEST(Serve, BatchLargerThanAnyFusedPlanFallsBackToSplitting) {
  Harness h(1, {1, 2, 4});  // no fused plan larger than 4
  // conv-dominated: batch fusion's weight-DMA amortization makes fused
  // chunks the cheapest mode (on the tiny FFN the fused tile schedule is
  // a wash and the dispatcher rightly prefers the serial pipeline)
  const Graph g = scaled_resnet18();
  const int m = h.add(g);
  SloConfig slo;
  slo.max_wait_cycles = 0;
  slo.deadline_cycles = UINT64_MAX;  // loose: fused mode wins
  slo.max_batch = 8;

  const auto trace = burst(m, input_shape(g), 8, 0, 54);
  const auto served = h.serve(slo, trace);
  ASSERT_EQ(served.size(), 8u);
  for (const Served& s : served) {
    EXPECT_EQ(s.stats.mode, ServeMode::kBatchFused);
    EXPECT_EQ(s.stats.group_size, 4)
        << "an 8-request batch must split into two fused-4 chunks";
  }
  // the second chunk completes after the first
  uint64_t first = 0, last = 0;
  for (const Served& s : served) {
    if (s.stats.id < 4) first = s.stats.completion_cycles;
    else last = s.stats.completion_cycles;
  }
  EXPECT_LT(first, last);
  h.expect_bit_exact(served, trace);
}

TEST(Serve, MixedModelStreamsFormPerModelBatches) {
  Harness h(2);
  const Graph resnet = scaled_resnet18();
  const Graph ffn = small_ffn();
  const int mr = h.add(resnet);
  const int mf = h.add(ffn);
  ASSERT_NE(mr, mf);

  SloConfig slo;
  slo.max_wait_cycles = 10'000'000;
  slo.deadline_cycles = UINT64_MAX;
  slo.max_batch = 2;

  // interleave the two models at the same arrival cycles
  std::vector<Request> trace;
  Rng rng(55);
  for (int i = 0; i < 4; ++i) {
    const int model = i % 2 == 0 ? mr : mf;
    const Graph& g = i % 2 == 0 ? resnet : ffn;
    trace.push_back(Request{static_cast<uint64_t>(i), model,
                            static_cast<uint64_t>(i),
                            Tensor8::random(input_shape(g), rng)});
  }
  const auto served = h.serve(slo, trace);
  ASSERT_EQ(served.size(), 4u);
  for (const Served& s : served) {
    EXPECT_EQ(s.stats.group_size, 2)
        << "each model's pair must batch together, never across models";
  }
  h.expect_bit_exact(served, trace);
}

TEST(Serve, SubmissionThreadTimingDoesNotChangeServingDecisions) {
  // The same trace submitted (a) inline before serve() and (b) from a
  // producer thread racing the serving loop must produce identical
  // batches, modes, and stats: decisions depend on arrival cycles only.
  const Graph g = small_ffn();
  SloConfig slo;
  slo.max_wait_cycles = 1000;
  slo.deadline_cycles = UINT64_MAX;
  slo.max_batch = 2;

  Harness h(1);
  const int m = h.add(g);
  const auto trace = burst(m, input_shape(g), 6, 0, 56);

  const auto inline_served = h.serve(slo, trace);

  Server threaded(h.dispatcher, slo);
  std::thread producer([&] {
    for (const Request& r : trace) {
      threaded.submit(Request{r.id, r.model, r.arrival_cycles, r.input});
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    threaded.close();
  });
  const auto threaded_served = threaded.serve();
  producer.join();

  ASSERT_EQ(inline_served.size(), threaded_served.size());
  for (size_t i = 0; i < inline_served.size(); ++i) {
    EXPECT_EQ(inline_served[i].stats.id, threaded_served[i].stats.id);
    EXPECT_EQ(inline_served[i].stats.mode, threaded_served[i].stats.mode);
    EXPECT_EQ(inline_served[i].stats.dispatch_cycles,
              threaded_served[i].stats.dispatch_cycles);
    EXPECT_EQ(inline_served[i].stats.completion_cycles,
              threaded_served[i].stats.completion_cycles);
    EXPECT_TRUE(inline_served[i].output == threaded_served[i].output);
  }
}

// --- mode selection ----------------------------------------------------------

TEST(Serve, TightSloPicksShardedSingleImageExecution) {
  Harness h(4);
  const Graph g = scaled_resnet18();
  const int m = h.add(g);
  const uint64_t total = h.store.plan(m, 1, 1).total_cycles;

  // the shard critical path (4 clusters) is well below the single-cluster
  // total; a deadline between the two is only feasible sharded
  const auto probe = h.dispatcher.evaluate(
      m, 1, {0}, 0, SloConfig{0, UINT64_MAX, 1});
  const uint64_t critical = probe[1].completion_cycles[0];
  ASSERT_LT(critical, total);
  SloConfig slo;
  slo.max_wait_cycles = 0;
  slo.deadline_cycles = (critical + total) / 2;
  slo.max_batch = 1;

  // two far-apart singles, so each finds an idle engine and the deadline
  // constrains pure execution latency
  std::vector<Request> trace = burst(m, input_shape(g), 1, 0, 57);
  auto second = burst(m, input_shape(g), 1, 10 * total, 62, 1);
  trace.push_back(std::move(second[0]));
  const auto served = h.serve(slo, trace);
  ASSERT_EQ(served.size(), 2u);
  for (const Served& s : served) {
    EXPECT_EQ(s.stats.mode, ServeMode::kShardedSingle);
    EXPECT_TRUE(s.stats.deadline_hit);
    EXPECT_LT(s.stats.exec_cycles(), total)
        << "sharded execution must beat the batch=1 single-cluster latency";
  }
  h.expect_bit_exact(served, trace);
}

TEST(Serve, LooseSloPicksBatchFusedPlans) {
  Harness h(4);
  const Graph g = scaled_resnet18();
  const int m = h.add(g);
  SloConfig slo;
  slo.max_wait_cycles = 0;
  slo.deadline_cycles = UINT64_MAX;
  slo.max_batch = 4;

  const auto trace = burst(m, input_shape(g), 4, 0, 58);
  const auto served = h.serve(slo, trace);
  ASSERT_EQ(served.size(), 4u);
  for (const Served& s : served) {
    EXPECT_EQ(s.stats.mode, ServeMode::kBatchFused);
    EXPECT_EQ(s.stats.group_size, 4);
  }
  // fused serving must consume fewer cycles than four serial images
  const uint64_t total = h.store.plan(m, 1, 1).total_cycles;
  EXPECT_LT(served[0].stats.exec_cycles(), 4 * total);
  h.expect_bit_exact(served, trace);
}

TEST(Serve, MidSloOverADeepBurstPicksDataParallel) {
  Harness h(4);
  const Graph g = scaled_resnet18();
  const int m = h.add(g);

  // score the modes for an 8-burst to find a deadline that data-parallel
  // meets but fused misses
  const std::vector<uint64_t> arrivals(8, 0);
  const auto evals = h.dispatcher.evaluate(
      m, 8, arrivals, 0, SloConfig{0, UINT64_MAX, 8});
  const uint64_t fused_makespan = evals[0].makespan_cycles;
  const uint64_t dp_makespan = evals[2].makespan_cycles;
  ASSERT_LT(dp_makespan, fused_makespan)
      << "4 clusters must finish a deep burst before one fused cluster";
  // fused is the cheapest mode in consumed cycles, data-parallel cheaper
  // than sharding every image
  EXPECT_LT(evals[0].cost_cycles, evals[2].cost_cycles);
  EXPECT_LT(evals[2].cost_cycles, evals[1].cost_cycles);

  SloConfig slo;
  slo.max_wait_cycles = 0;
  slo.deadline_cycles = (dp_makespan + fused_makespan) / 2;
  slo.max_batch = 8;
  const auto trace = burst(m, input_shape(g), 8, 0, 59);
  const auto served = h.serve(slo, trace);
  ASSERT_EQ(served.size(), 8u);
  for (const Served& s : served) {
    EXPECT_EQ(s.stats.mode, ServeMode::kDataParallel);
    EXPECT_TRUE(s.stats.deadline_hit);
  }
  h.expect_bit_exact(served, trace);
}

// --- plan store --------------------------------------------------------------

TEST(Serve, PlanStoreCompilesEachConfigOnceAcrossTraffic) {
  Harness h(2);
  const Graph g = small_ffn();
  const int m = h.add(g);
  const int warmed = h.store.compiles();
  EXPECT_GT(warmed, 0);

  SloConfig slo;
  slo.max_wait_cycles = 1000;
  slo.deadline_cycles = UINT64_MAX;
  slo.max_batch = 4;
  const auto trace = burst(m, input_shape(g), 8, 0, 60);
  const auto first = h.serve(slo, trace);
  EXPECT_EQ(h.store.compiles(), warmed)
      << "serving after warm-up must never compile";
  const auto second = h.serve(slo, trace);
  EXPECT_EQ(h.store.compiles(), warmed);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_TRUE(first[i].output == second[i].output)
        << "identical traces must serve identical outputs";
  }
}

TEST(Serve, PlanStoreDeduplicatesModelsByContent) {
  PlanStore store(isa_options());
  const Graph a = small_ffn();
  const Graph twin = small_ffn();
  const int ma = store.add_model(a);
  EXPECT_EQ(store.add_model(twin), ma)
      << "identical content must map to one model id";
  EXPECT_EQ(store.model_count(), 1);

  const Graph other = scaled_resnet18();
  EXPECT_NE(store.add_model(other), ma);
  EXPECT_EQ(store.model_count(), 2);

  // the store owns its graphs: plans reference the stable copy, never a
  // caller's object, so registering (and destroying) re-created graphs
  // while plans are in use is safe
  const CompiledPlan& plan = store.plan(ma, 1, 1);
  EXPECT_EQ(store.compiles(), 1);
  EXPECT_EQ(plan.graph, &store.graph(ma));
  {
    const Graph recreated = small_ffn();
    EXPECT_EQ(store.add_model(recreated), ma);
  }  // recreated destroyed here
  EXPECT_EQ(plan.graph, &store.graph(ma));
  EXPECT_EQ(&store.plan(ma, 1, 1), &plan);
  EXPECT_EQ(store.compiles(), 1);
  // the plan still executes after every caller-side graph is gone
  ExecutionEngine engine;
  Rng rng(66);
  const Tensor8 x = Tensor8::random({32, 64}, rng);
  EXPECT_EQ(engine.run(plan, x).output.shape(),
            (std::vector<int>{32, 64}));
}

TEST(Serve, PlanFingerprintFromMatchesPlanFingerprint) {
  const Graph g = small_ffn();
  CompileOptions opt = isa_options();
  opt.batch = 4;
  opt.num_clusters = 2;
  EXPECT_EQ(plan_fingerprint_from(graph_fingerprint(g), opt),
            plan_fingerprint(g, opt));
}

// --- structured batch-mismatch error ----------------------------------------

TEST(Serve, RunBatchMismatchCarriesStructuredSizes) {
  const Graph g = small_ffn();
  CompileOptions opt = isa_options();
  opt.batch = 4;
  Compiler compiler(opt);
  const CompiledPlan plan = compiler.compile(g);
  ExecutionEngine engine;
  Rng rng(61);
  std::vector<Tensor8> three;
  for (int i = 0; i < 3; ++i) {
    three.push_back(Tensor8::random(input_shape(g), rng));
  }
  try {
    engine.run_batch(plan, three);
    FAIL() << "mismatched span must throw";
  } catch (const BatchMismatchError& e) {
    EXPECT_EQ(e.fused_batch(), 4);
    EXPECT_EQ(e.got(), 3);
  }
  // still an Error for callers that do not care about the structure
  EXPECT_THROW(engine.run_batch(plan, three), Error);
}

TEST(Serve, DispatcherChunkFallbackRecoversFromMismatchedPlan) {
  // the dispatcher's recovery path, driven directly: a chunk plan fused
  // for 4 images handed a 3-image span must fall back to per-image runs
  // on the unfused plan, bit-exactly, reporting group_size 1
  const Graph g = small_ffn();
  CompileOptions fopt = isa_options();
  fopt.batch = 4;
  Compiler fused_compiler(fopt);
  const CompiledPlan fused = fused_compiler.compile(g);
  Compiler single_compiler(isa_options(), fused_compiler.shared_latencies());
  const CompiledPlan single = single_compiler.compile(g);

  ExecutionEngine engine;
  Rng rng(67);
  std::vector<Tensor8> three;
  for (int i = 0; i < 3; ++i) {
    three.push_back(Tensor8::random(input_shape(g), rng));
  }
  int group = 0;
  std::vector<uint64_t> offsets;
  const auto outputs = Dispatcher::run_chunk_with_fallback(
      engine, fused, single, three, group, offsets);
  EXPECT_EQ(group, 1);
  const uint64_t single_cycles =
      ExecutionEngine::modeled_batch_cycles(single, 1);
  ASSERT_EQ(offsets.size(), 3u);
  for (size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i], (i + 1) * single_cycles)
        << "fallback images complete serially, not at the chunk end";
  }
  ASSERT_EQ(outputs.size(), 3u);
  for (size_t i = 0; i < outputs.size(); ++i) {
    EXPECT_TRUE(outputs[i] == engine.run(single, three[i]).output)
        << "image " << i;
  }

  // a matching span takes the fused path and reports the chunk size
  three.push_back(Tensor8::random(input_shape(g), rng));
  const auto four = Dispatcher::run_chunk_with_fallback(
      engine, fused, single, three, group, offsets);
  EXPECT_EQ(group, 4);
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_EQ(offsets.back(), ExecutionEngine::modeled_batch_cycles(fused, 4));
  EXPECT_EQ(four.size(), 4u);
}

TEST(Serve, ChunkFallbackIsCountedAndOnlyWhenItFires) {
  // ops visibility for the recovery path: every mismatch fallback bumps
  // serve.fallbacks (and emits a kServe span); the fused fast path does not
  const Graph g = small_ffn();
  CompileOptions fopt = isa_options();
  fopt.batch = 2;
  Compiler fused_compiler(fopt);
  const CompiledPlan fused = fused_compiler.compile(g);
  Compiler single_compiler(isa_options(), fused_compiler.shared_latencies());
  const CompiledPlan single = single_compiler.compile(g);

  ExecutionEngine engine;
  Rng rng(68);
  std::vector<Tensor8> inputs;
  inputs.push_back(Tensor8::random(input_shape(g), rng));

  auto& fallbacks = metrics::registry().counter("serve.fallbacks");
  const uint64_t before = fallbacks.value();
  int group = 0;
  std::vector<uint64_t> offsets;
  Dispatcher::run_chunk_with_fallback(engine, fused, single, inputs, group,
                                      offsets);
  EXPECT_EQ(group, 1);
  EXPECT_EQ(fallbacks.value(), before + 1);

  // matching span: fused path, counter untouched
  inputs.push_back(Tensor8::random(input_shape(g), rng));
  Dispatcher::run_chunk_with_fallback(engine, fused, single, inputs, group,
                                      offsets);
  EXPECT_EQ(group, 2);
  EXPECT_EQ(fallbacks.value(), before + 1);
}

// --- batcher unit behavior ---------------------------------------------------

TEST(Serve, BatcherIsUndecidableWithoutFutureKnowledge) {
  Batcher batcher(SloConfig{100, UINT64_MAX, 4});
  EXPECT_FALSE(batcher.try_form(0, std::nullopt, false).has_value());

  Rng rng(62);
  batcher.admit(Request{0, 0, 10, Tensor8::random({1, 4}, rng)});
  // open stream, nothing known about the future: wait
  EXPECT_FALSE(batcher.try_form(0, std::nullopt, false).has_value());
  // a next arrival inside the admission window: admit it first
  EXPECT_FALSE(batcher.try_form(0, 50, false).has_value());
  // a next arrival beyond the window: deadline flush at arrival + wait
  const auto flushed = batcher.try_form(0, 500, false);
  ASSERT_TRUE(flushed.has_value());
  EXPECT_EQ(flushed->reason, FlushReason::kDeadline);
  EXPECT_EQ(flushed->dispatch_cycles, 110u);
  EXPECT_EQ(flushed->requests.size(), 1u);
  EXPECT_FALSE(batcher.has_pending());
}

TEST(Serve, FullBatchIsNotBlockedByAnOlderFormingBatch) {
  // model 7 has an older, still-undecidable straggler; model 9 fills a
  // whole batch — the full batch must flush immediately, not wait behind
  // model 7's deadline
  Batcher batcher(SloConfig{1'000'000, UINT64_MAX, 4});
  Rng rng(64);
  batcher.admit(Request{0, 7, 0, Tensor8::random({1, 4}, rng)});
  for (uint64_t i = 0; i < 4; ++i) {
    batcher.admit(Request{1 + i, 9, 10 + i, Tensor8::random({1, 4}, rng)});
  }
  const auto full = batcher.try_form(0, std::nullopt, false);
  ASSERT_TRUE(full.has_value());
  EXPECT_EQ(full->model, 9);
  EXPECT_EQ(full->reason, FlushReason::kFull);
  EXPECT_EQ(full->requests.size(), 4u);
  EXPECT_EQ(full->dispatch_cycles, 13u);
  // the straggler is still pending and still undecidable on its own
  EXPECT_EQ(batcher.pending(), 1u);
  EXPECT_FALSE(batcher.try_form(0, std::nullopt, false).has_value());
}

TEST(Serve, InfiniteMaxWaitNeverFlushesEarly) {
  // max_wait near UINT64_MAX means "wait for a full batch": the deadline
  // must saturate instead of wrapping into a premature flush
  Batcher batcher(SloConfig{UINT64_MAX, UINT64_MAX, 4});
  Rng rng(65);
  batcher.admit(Request{0, 0, 1000, Tensor8::random({1, 4}, rng)});
  EXPECT_FALSE(batcher.try_form(0, 1'000'000'000, false).has_value())
      << "any future arrival lies inside a saturated admission window";
  const auto drained = batcher.try_form(0, std::nullopt, true);
  ASSERT_TRUE(drained.has_value());
  EXPECT_EQ(drained->reason, FlushReason::kDrain);
}

TEST(Serve, BatcherExtendsAdmissionWhileEngineIsBusy) {
  // engine busy until cycle 1000: a request arriving at 600 — far past
  // the oldest request's deadline — can still join the batch
  Batcher batcher(SloConfig{100, UINT64_MAX, 4});
  Rng rng(63);
  batcher.admit(Request{0, 0, 10, Tensor8::random({1, 4}, rng)});
  EXPECT_FALSE(batcher.try_form(1000, 600, false).has_value())
      << "an arrival inside max(deadline, free_at) must be admitted first";
  batcher.admit(Request{1, 0, 600, Tensor8::random({1, 4}, rng)});
  const auto flushed = batcher.try_form(1000, 2000, false);
  ASSERT_TRUE(flushed.has_value());
  EXPECT_EQ(flushed->requests.size(), 2u);
  EXPECT_EQ(flushed->dispatch_cycles, 1000u);
}

}  // namespace
}  // namespace decimate
