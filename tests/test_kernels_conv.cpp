// Bit-exactness of the convolution kernel programs vs the reference ops,
// across a sweep of geometries, sparsities and kernel kinds, plus the
// paper's inner-loop instruction-count analysis (Sec. 4.1).

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace decimate {
namespace {

using test::TestRig;

struct ConvCase {
  KernelKind kind;
  int m;  // 0 = dense
  ConvGeom g;
};

std::string case_name(const ::testing::TestParamInfo<ConvCase>& info) {
  const auto& c = info.param;
  std::string n = kernel_kind_name(c.kind);
  for (auto& ch : n) {
    if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return n + "_m" + std::to_string(c.m) + "_c" + std::to_string(c.g.c) + "_k" +
         std::to_string(c.g.k) + "_f" + std::to_string(c.g.fx) + "_s" +
         std::to_string(c.g.stride) + "_p" + std::to_string(c.g.pad) + "_i" +
         std::to_string(c.g.ix) + "_" + std::to_string(info.index);
}

class ConvKernelTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvKernelTest, MatchesReference) {
  const auto& c = GetParam();
  Rng rng(0xC0FFEE + static_cast<uint64_t>(c.g.c) * 31 + c.m);
  TestRig rig;
  const Tensor8 input = Tensor8::random({c.g.iy, c.g.ix, c.g.c}, rng);
  const Tensor32 bias = test::random_bias(c.g.k, rng);
  const Requant rq = test::test_requant();

  Tensor8 dense_w = (c.m == 0)
                        ? test::random_weights(c.g.k, c.g.fsz(), rng)
                        : test::random_sparse_weights(c.g.k, c.g.fsz(), c.m, rng);
  const Tensor8 expected = conv2d_s8(input, dense_w, bias, c.g, rq);

  KernelRun run;
  if (kernel_is_sparse(c.kind)) {
    const NmPacked packed = nm_pack(dense_w.flat(), c.g.k, c.g.fsz(), c.m,
                                    KernelLauncher::layout_for(c.kind));
    run = rig.launcher->conv(c.kind, c.g, rq, input, nullptr, &packed, bias);
  } else {
    run = rig.launcher->conv(c.kind, c.g, rq, input, &dense_w, nullptr, bias);
  }
  ASSERT_EQ(run.output.shape(), expected.shape());
  for (int64_t i = 0; i < expected.numel(); ++i) {
    ASSERT_EQ(run.output[i], expected[i])
        << "first mismatch at flat index " << i << " for "
        << kernel_kind_name(c.kind) << " m=" << c.m;
  }
  EXPECT_GT(run.result.wall_cycles, 0u);
  EXPECT_EQ(run.dense_macs, c.g.macs());
}

constexpr ConvGeom kG8x8C32K8{.ix = 8, .iy = 8, .c = 32, .k = 8, .fx = 3,
                              .fy = 3, .stride = 1, .pad = 1};
constexpr ConvGeom kG8x8C64K8{.ix = 8, .iy = 8, .c = 64, .k = 8, .fx = 3,
                              .fy = 3, .stride = 1, .pad = 1};
constexpr ConvGeom kG4x4C64K16{.ix = 4, .iy = 4, .c = 64, .k = 16, .fx = 3,
                               .fy = 3, .stride = 1, .pad = 1};
constexpr ConvGeom kGPw1x1{.ix = 6, .iy = 6, .c = 32, .k = 12, .fx = 1,
                           .fy = 1, .stride = 1, .pad = 0};
constexpr ConvGeom kGStride2{.ix = 8, .iy = 8, .c = 32, .k = 8, .fx = 3,
                             .fy = 3, .stride = 2, .pad = 1};
constexpr ConvGeom kGDown1x1s2{.ix = 8, .iy = 8, .c = 32, .k = 16, .fx = 1,
                               .fy = 1, .stride = 2, .pad = 0};
constexpr ConvGeom kG5x5{.ix = 12, .iy = 6, .c = 16, .k = 4, .fx = 5, .fy = 5,
                         .stride = 1, .pad = 2};
constexpr ConvGeom kGPatch16{.ix = 32, .iy = 32, .c = 4, .k = 8, .fx = 16,
                             .fy = 16, .stride = 16, .pad = 0};

INSTANTIATE_TEST_SUITE_P(
    Dense, ConvKernelTest,
    ::testing::Values(
        ConvCase{KernelKind::kConvDense1x2, 0, kG8x8C32K8},
        ConvCase{KernelKind::kConvDense1x2, 0, kG4x4C64K16},
        ConvCase{KernelKind::kConvDense1x2, 0, kGPw1x1},
        ConvCase{KernelKind::kConvDense1x2, 0, kGStride2},
        ConvCase{KernelKind::kConvDense1x2, 0, kGDown1x1s2},
        ConvCase{KernelKind::kConvDense1x2, 0, kG5x5},
        ConvCase{KernelKind::kConvDense1x2, 0, kGPatch16},
        ConvCase{KernelKind::kConvDense4x2, 0, kG8x8C32K8},
        ConvCase{KernelKind::kConvDense4x2, 0, kG4x4C64K16},
        ConvCase{KernelKind::kConvDense4x2, 0, kGPw1x1},
        ConvCase{KernelKind::kConvDense4x2, 0, kGStride2},
        ConvCase{KernelKind::kConvDense4x2, 0, kGDown1x1s2},
        ConvCase{KernelKind::kConvDense4x2, 0, kGPatch16}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    SparseSw, ConvKernelTest,
    ::testing::Values(
        ConvCase{KernelKind::kConvSparseSw, 4, kG8x8C32K8},
        ConvCase{KernelKind::kConvSparseSw, 8, kG8x8C32K8},
        ConvCase{KernelKind::kConvSparseSw, 16, kG8x8C32K8},
        ConvCase{KernelKind::kConvSparseSw, 4, kG4x4C64K16},
        ConvCase{KernelKind::kConvSparseSw, 8, kG4x4C64K16},
        ConvCase{KernelKind::kConvSparseSw, 16, kG4x4C64K16},
        ConvCase{KernelKind::kConvSparseSw, 8, kGStride2},
        ConvCase{KernelKind::kConvSparseSw, 16, kGStride2},
        ConvCase{KernelKind::kConvSparseSw, 8, kGPw1x1},
        ConvCase{KernelKind::kConvSparseSw, 4, kG5x5},
        ConvCase{KernelKind::kConvSparseSw, 8, kGPatch16},
        ConvCase{KernelKind::kConvSparseSw, 2, kG8x8C32K8},
        ConvCase{KernelKind::kConvSparseSw, 2, kG4x4C64K16},
        ConvCase{KernelKind::kConvSparseSw, 2, kGStride2}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    SparseIsa, ConvKernelTest,
    ::testing::Values(
        ConvCase{KernelKind::kConvSparseIsa, 4, kG8x8C32K8},
        ConvCase{KernelKind::kConvSparseIsa, 8, kG8x8C32K8},
        ConvCase{KernelKind::kConvSparseIsa, 16, kG8x8C32K8},
        ConvCase{KernelKind::kConvSparseIsa, 4, kG4x4C64K16},
        ConvCase{KernelKind::kConvSparseIsa, 8, kG4x4C64K16},
        ConvCase{KernelKind::kConvSparseIsa, 16, kG4x4C64K16},
        ConvCase{KernelKind::kConvSparseIsa, 8, kGStride2},
        ConvCase{KernelKind::kConvSparseIsa, 16, kGStride2},
        ConvCase{KernelKind::kConvSparseIsa, 8, kGPw1x1},
        ConvCase{KernelKind::kConvSparseIsa, 4, kG5x5},
        ConvCase{KernelKind::kConvSparseIsa, 16, kGPatch16}),
    case_name);

INSTANTIATE_TEST_SUITE_P(
    SparseIm2colAblation, ConvKernelTest,
    ::testing::Values(
        ConvCase{KernelKind::kConvSparseIm2col, 8, kG8x8C32K8},
        ConvCase{KernelKind::kConvSparseIm2col, 16, kG4x4C64K16}),
    case_name);

TEST(ConvKernelInstrCounts, InnerLoopsMatchPaper) {
  // Sec. 4.1: 14 (4x2), 5 (1x2), 22/23 (SW 1:8,1:16 / 1:4), 12 (ISA).
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kConvDense4x2, 0)
                .region_length(kInnerBegin, kInnerEnd),
            14);
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kConvDense1x2, 0)
                .region_length(kInnerBegin, kInnerEnd),
            5);
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kConvSparseSw, 8)
                .region_length(kInnerBegin, kInnerEnd),
            22);
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kConvSparseSw, 16)
                .region_length(kInnerBegin, kInnerEnd),
            22);
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kConvSparseSw, 4)
                .region_length(kInnerBegin, kInnerEnd),
            23);
  // M=2 shares the M=4 body (2-bit offsets): same inner-loop length.
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kConvSparseSw, 2)
                .region_length(kInnerBegin, kInnerEnd),
            23);
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kConvSparseIsa, 8)
                .region_length(kInnerBegin, kInnerEnd),
            12);
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kConvSparseIsa, 16)
                .region_length(kInnerBegin, kInnerEnd),
            12);
  // M=4 ISA: one offsets word covers two logical iterations.
  EXPECT_EQ(KernelLauncher::program_for(KernelKind::kConvSparseIsa, 4)
                .region_length(kInnerBegin, kInnerEnd),
            23);
}

TEST(ConvKernelPeaks, MacsPerInstructionApproachTheory) {
  // Large-C conv so the inner loop dominates; compare measured MAC/instr
  // against the theoretical peak of Sec. 4.1 (within 25% for im2col etc).
  const ConvGeom g{.ix = 8, .iy = 8, .c = 128, .k = 16, .fx = 3, .fy = 3,
                   .stride = 1, .pad = 1};
  Rng rng(5);
  const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
  const Tensor32 bias = test::random_bias(g.k, rng);
  const Requant rq = test::test_requant();

  auto measure = [&](KernelKind kind, int m) {
    TestRig rig;
    KernelRun run;
    if (kernel_is_sparse(kind)) {
      Tensor8 w = test::random_sparse_weights(g.k, g.fsz(), m, rng);
      const NmPacked packed =
          nm_pack(w.flat(), g.k, g.fsz(), m, KernelLauncher::layout_for(kind));
      run = rig.launcher->conv(kind, g, rq, input, nullptr, &packed, bias);
    } else {
      Tensor8 w = test::random_weights(g.k, g.fsz(), rng);
      run = rig.launcher->conv(kind, g, rq, input, &w, nullptr, bias);
    }
    // logical (not dense-equivalent) MACs per executed instruction
    const double logical_macs =
        static_cast<double>(g.macs()) / std::max(m, 1);
    return logical_macs / static_cast<double>(run.result.total_instructions);
  };

  EXPECT_NEAR(measure(KernelKind::kConvDense4x2, 0), 2.28, 0.6);
  EXPECT_NEAR(measure(KernelKind::kConvDense1x2, 0), 1.60, 0.4);
  EXPECT_NEAR(measure(KernelKind::kConvSparseSw, 8), 0.36, 0.09);
  EXPECT_NEAR(measure(KernelKind::kConvSparseIsa, 8), 0.66, 0.17);
}

TEST(ConvKernel, RejectsBadGeometry) {
  TestRig rig;
  Rng rng(1);
  // odd OX
  ConvGeom g{.ix = 5, .iy = 4, .c = 8, .k = 4, .fx = 1, .fy = 1};
  Tensor8 in = Tensor8::random({4, 5, 8}, rng);
  Tensor8 w = test::random_weights(4, 8, rng);
  Tensor32 bias({4}, 0);
  EXPECT_THROW(rig.launcher->conv(KernelKind::kConvDense1x2, g,
                                  test::test_requant(), in, &w, nullptr, bias),
               Error);
  // C not multiple of 4
  ConvGeom g2{.ix = 4, .iy = 4, .c = 3, .k = 4, .fx = 1, .fy = 1};
  Tensor8 in2 = Tensor8::random({4, 4, 3}, rng);
  Tensor8 w2 = test::random_weights(4, 3, rng);
  EXPECT_THROW(rig.launcher->conv(KernelKind::kConvDense1x2, g2,
                                  test::test_requant(), in2, &w2, nullptr,
                                  bias),
               Error);
  // 4x2 needs K % 4
  ConvGeom g3{.ix = 4, .iy = 4, .c = 8, .k = 6, .fx = 1, .fy = 1};
  Tensor8 in3 = Tensor8::random({4, 4, 8}, rng);
  Tensor8 w3 = test::random_weights(6, 8, rng);
  Tensor32 bias3({6}, 0);
  EXPECT_THROW(rig.launcher->conv(KernelKind::kConvDense4x2, g3,
                                  test::test_requant(), in3, &w3, nullptr,
                                  bias3),
               Error);
}

TEST(ConvKernel, SingleCoreAndLockstepAgreeWithReference) {
  const ConvGeom g = kG8x8C32K8;
  Rng rng(77);
  const Tensor8 input = Tensor8::random({g.iy, g.ix, g.c}, rng);
  const Tensor32 bias = test::random_bias(g.k, rng);
  Tensor8 w = test::random_sparse_weights(g.k, g.fsz(), 8, rng);
  const NmPacked packed = nm_pack(w.flat(), g.k, g.fsz(), 8, NmLayout::kSw);
  const Tensor8 expected = conv2d_s8(input, w, bias, g, test::test_requant());

  TestRig one_core(1);
  const KernelRun r1 = one_core.launcher->conv(
      KernelKind::kConvSparseSw, g, test::test_requant(), input, nullptr,
      &packed, bias);
  EXPECT_TRUE(r1.output == expected);

  TestRig lockstep(8, /*lockstep=*/true);
  const KernelRun r2 = lockstep.launcher->conv(
      KernelKind::kConvSparseSw, g, test::test_requant(), input, nullptr,
      &packed, bias);
  EXPECT_TRUE(r2.output == expected);
  // contention can only slow things down
  TestRig seq(8);
  const KernelRun r3 = seq.launcher->conv(KernelKind::kConvSparseSw, g,
                                          test::test_requant(), input, nullptr,
                                          &packed, bias);
  EXPECT_GE(r2.result.wall_cycles, r3.result.wall_cycles);
}

}  // namespace
}  // namespace decimate
