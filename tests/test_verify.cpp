// Plan-verifier tests: adversarial corruptions of real CompiledPlans must
// be caught with the exact check id the defect class documents, and — the
// zero-false-positive half — every plan the compiler actually produces
// must verify with no findings at all.

#include <gtest/gtest.h>

#include <limits>

#include "exec/compile.hpp"
#include "isa/instr.hpp"
#include "models/models.hpp"
#include "nn/prune.hpp"
#include "serve/plan_store.hpp"
#include "shard/shard_planner.hpp"
#include "verify/verify.hpp"

namespace decimate {
namespace {

// One ISS-measurement cache for the whole suite: repeated geometries
// across tests never re-simulate.
std::shared_ptr<TileLatencyCache> suite_cache() {
  static auto cache = std::make_shared<TileLatencyCache>();
  return cache;
}

Graph single_conv(const ConvGeom& g, int m, uint64_t seed = 7) {
  Rng rng(seed);
  Graph graph({g.iy, g.ix, g.c});
  Node n;
  n.op = OpType::kConv2d;
  n.name = "conv";
  n.inputs = {0};
  n.conv = g;
  n.weights = Tensor8::random({g.k, g.fsz()}, rng);
  if (m != 0) nm_prune(n.weights.flat(), g.k, g.fsz(), 1, m);
  Tensor32 bias({g.k});
  for (int i = 0; i < g.k; ++i) bias[i] = rng.uniform_int(-500, 500);
  n.bias = std::move(bias);
  n.rq = calibrate_requant(g.fsz());
  n.out_shape = {g.oy(), g.ox(), g.k};
  graph.add(std::move(n));
  return graph;
}

Graph single_fc(const FcGeom& g, int m, uint64_t seed = 7,
                Requant rq = {0, 0}, int32_t bias0 = 0) {
  Rng rng(seed);
  Graph graph({g.tokens, g.c});
  Node n;
  n.op = OpType::kFc;
  n.name = "fc";
  n.inputs = {0};
  n.fc = g;
  n.weights = Tensor8::random({g.k, g.c}, rng);
  if (m != 0) nm_prune(n.weights.flat(), g.k, g.c, 1, m);
  Tensor32 bias({g.k});
  for (int i = 0; i < g.k; ++i) bias[i] = rng.uniform_int(-500, 500);
  if (bias0 != 0) bias[0] = bias0;
  n.bias = std::move(bias);
  n.rq = (rq.mult != 0 || rq.shift != 0) ? rq : calibrate_requant(g.c);
  n.out_shape = {g.tokens, g.k};
  graph.add(std::move(n));
  return graph;
}

CompileOptions options(bool isa = false) {
  CompileOptions opt;
  opt.enable_isa = isa;
  opt.verify_plans = false;  // tests corrupt plans and verify by hand
  return opt;
}

CompiledPlan compile(const Graph& g, const CompileOptions& opt) {
  Compiler compiler(opt, suite_cache());
  return compiler.compile(g);
}

// --- zero false positives ---------------------------------------------------

TEST(Verify, CleanOnEveryCompiledPlan) {
  const ConvGeom cg{.ix = 8, .iy = 8, .c = 32, .k = 16, .fx = 3, .fy = 3,
                    .stride = 1, .pad = 1};
  const FcGeom fg{.tokens = 8, .c = 64, .k = 16};
  for (const int m : {0, 2, 4, 8, 16}) {
    for (const bool isa : {false, true}) {
      const Graph conv = single_conv(cg, m, 7 + static_cast<uint64_t>(m));
      const Graph fc = single_fc(fg, m, 9 + static_cast<uint64_t>(m));
      for (const Graph* g : {&conv, &fc}) {
        const CompiledPlan plan = compile(*g, options(isa));
        const VerifyReport rep = verify_plan(plan);
        EXPECT_TRUE(rep.clean()) << "m=" << m << " isa=" << isa << "\n"
                                 << rep.to_string();
        EXPECT_GT(rep.checks_run, 0);
      }
    }
  }
}

TEST(Verify, CleanOnBatchedAndMultiClusterPlans) {
  const FcGeom fg{.tokens = 8, .c = 64, .k = 16};
  const Graph fc = single_fc(fg, 8);
  for (const int batch : {1, 4}) {
    for (const int clusters : {1, 2}) {
      CompileOptions opt = options(true);
      opt.batch = batch;
      opt.num_clusters = clusters;
      const CompiledPlan plan = compile(fc, opt);
      const VerifyReport rep = verify_plan(plan);
      EXPECT_TRUE(rep.clean()) << "batch=" << batch << " nc=" << clusters
                               << "\n" << rep.to_string();
    }
  }
}

// --- compiler post-pass / serving admission gate ----------------------------

TEST(Verify, CompilerPostPassAcceptsGoodPlans) {
  CompileOptions opt = options();
  opt.verify_plans = true;
  const Graph g = single_fc({.tokens = 4, .c = 64, .k = 16}, 8);
  EXPECT_NO_THROW({
    Compiler compiler(opt, suite_cache());
    (void)compiler.compile(g);
  });
}

TEST(Verify, CompilerPostPassRejectsIllegalRequant) {
  // A graph whose requant can never have come from make_requant: the
  // compiler lowers it happily, the verifier must refuse it.
  CompileOptions opt = options();
  opt.verify_plans = true;
  const Graph bad =
      single_fc({.tokens = 4, .c = 64, .k = 16}, 0, 11, Requant{-3, 31});
  Compiler compiler(opt, suite_cache());
  try {
    (void)compiler.compile(bad);
    FAIL() << "compile accepted an illegal requant";
  } catch (const VerifyError& e) {
    EXPECT_TRUE(e.report().has("quant.mult")) << e.what();
    EXPECT_TRUE(e.report().has("quant.shift")) << e.what();
    EXPECT_NE(std::string(e.what()).find("plan verification failed"),
              std::string::npos);
  }
}

TEST(Verify, PlanStoreAdmissionGateRejectsBadPlans) {
  // The store verifies even when the per-compile post-pass is off (the
  // Release default) — a serving plan is never admitted unchecked.
  CompileOptions base = options();
  PlanStore store(base, suite_cache());
  const Graph good = single_fc({.tokens = 4, .c = 64, .k = 16}, 8);
  const Graph bad =
      single_fc({.tokens = 4, .c = 64, .k = 16}, 0, 11, Requant{-3, 31});
  const int good_id = store.add_model(good);
  const int bad_id = store.add_model(bad);
  EXPECT_NO_THROW(store.plan(good_id, 1, 1));
  EXPECT_THROW(store.plan(bad_id, 1, 1), VerifyError);
  EXPECT_FALSE(store.contains(bad_id, 1, 1));
}

// --- family 2: tile-schedule coverage ---------------------------------------

class VerifyTiles : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = single_conv({.ix = 8, .iy = 8, .c = 32, .k = 16, .fx = 3,
                          .fy = 3, .stride = 1, .pad = 1},
                         8);
    plan_ = compile(graph_, options());
    ASSERT_TRUE(verify_plan(plan_).clean());
    ASSERT_FALSE(plan_.steps[0].tiles_meta.empty());
  }
  Graph graph_{std::vector<int>{1}};
  CompiledPlan plan_;
};

TEST_F(VerifyTiles, DuplicatedTileIsOverlap) {
  CompiledPlan p = plan_;
  p.steps[0].tiles_meta.push_back(p.steps[0].tiles_meta[0]);
  p.steps[0].tile_costs.push_back(p.steps[0].tile_costs[0]);
  const VerifyReport rep = verify_plan(p);
  EXPECT_TRUE(rep.has("tiles.overlap")) << rep.to_string();
  EXPECT_FALSE(rep.ok());
}

TEST_F(VerifyTiles, ShrunkTileIsGap) {
  CompiledPlan p = plan_;
  ShardTile& t = p.steps[0].tiles_meta[0];
  t.a_e -= 1;
  const VerifyReport rep = verify_plan(p);
  EXPECT_TRUE(rep.has("tiles.gap")) << rep.to_string();
}

TEST_F(VerifyTiles, TileOutsideOutputIsBounds) {
  CompiledPlan p = plan_;
  p.steps[0].tiles_meta[0].a_e = graph_.node(1).conv.oy() + 7;
  const VerifyReport rep = verify_plan(p);
  EXPECT_TRUE(rep.has("tiles.bounds")) << rep.to_string();
  // ... and the implied input window no longer fits the padded input
  EXPECT_TRUE(rep.has("mem.window")) << rep.to_string();
}

TEST_F(VerifyTiles, MetaNotParallelToCostsIsCount) {
  CompiledPlan p = plan_;
  p.steps[0].tile_costs.pop_back();
  const VerifyReport rep = verify_plan(p);
  EXPECT_TRUE(rep.has("tiles.count")) << rep.to_string();
}

TEST_F(VerifyTiles, WrongOutBytesIsCaught) {
  CompiledPlan p = plan_;
  p.steps[0].tiles_meta[0].out_bytes += 3;
  const VerifyReport rep = verify_plan(p);
  EXPECT_TRUE(rep.has("tiles.out_bytes")) << rep.to_string();
}

TEST_F(VerifyTiles, ScheduleThatNeverStagesInputIsCaught) {
  CompiledPlan p = plan_;
  for (ShardTile& t : p.steps[0].tiles_meta) t.loads_input = false;
  const VerifyReport rep = verify_plan(p);
  EXPECT_TRUE(rep.has("tiles.loads")) << rep.to_string();
}

// --- family 3: N:M pack validation ------------------------------------------

class VerifyPack : public ::testing::Test {
 protected:
  void SetUp() override {
    // c = 40 at 1:8 -> 5 NZ/row padded to 8: real padding slots to corrupt
    graph_ = single_fc({.tokens = 4, .c = 40, .k = 16}, 8);
    plan_ = compile(graph_, options());
    ASSERT_TRUE(verify_plan(plan_).clean());
    ASSERT_TRUE(plan_.steps[0].has_packed);
    ASSERT_EQ(plan_.steps[0].packed.nz_per_row, 5);
    ASSERT_EQ(plan_.steps[0].packed.nz_padded, 8);
  }
  Graph graph_{std::vector<int>{1}};
  CompiledPlan plan_;
};

TEST_F(VerifyPack, OffsetBeyondMIsCaughtAndRoundTripSkipped) {
  CompiledPlan p = plan_;
  p.steps[0].packed.offsets[0] |= 0x0F;  // field 0: raw 15 >= M=8
  const VerifyReport rep = verify_plan(p);
  EXPECT_TRUE(rep.has("pack.offset_range")) << rep.to_string();
  // decode would index out of bounds; the verifier must not attempt it
  EXPECT_FALSE(rep.has("pack.roundtrip")) << rep.to_string();
}

TEST_F(VerifyPack, CorruptValueFailsRoundTrip) {
  CompiledPlan p = plan_;
  p.steps[0].packed.values[0] ^= 1;
  const VerifyReport rep = verify_plan(p);
  EXPECT_TRUE(rep.has("pack.roundtrip")) << rep.to_string();
  EXPECT_FALSE(rep.has("pack.offset_range"));
}

TEST_F(VerifyPack, NonZeroPaddingValueIsCaught) {
  CompiledPlan p = plan_;
  // row 0, first padded slot: the kernels would accumulate it
  p.steps[0].packed.values[p.steps[0].packed.nz_per_row] = 1;
  const VerifyReport rep = verify_plan(p);
  EXPECT_TRUE(rep.has("pack.padding")) << rep.to_string();
}

TEST_F(VerifyPack, InconsistentMetadataIsCaught) {
  CompiledPlan p = plan_;
  p.steps[0].packed.nz_per_row += 1;
  const VerifyReport rep = verify_plan(p);
  EXPECT_TRUE(rep.has("pack.meta")) << rep.to_string();
}

TEST_F(VerifyPack, LayoutMismatchedToKernelIsCaught) {
  CompiledPlan p = plan_;
  p.steps[0].packed.layout = NmLayout::kConvIsaDup;  // SW kernel step
  const VerifyReport rep = verify_plan(p);
  EXPECT_TRUE(rep.has("pack.layout")) << rep.to_string();
}

TEST(VerifyPackIsa, BrokenConvOffsetDuplicationIsCaught) {
  const Graph g = single_conv({.ix = 8, .iy = 8, .c = 32, .k = 8, .fx = 3,
                               .fy = 3, .stride = 1, .pad = 1},
                              8);
  CompiledPlan plan = compile(g, options(/*isa=*/true));
  ASSERT_TRUE(plan.steps[0].has_packed);
  ASSERT_EQ(plan.steps[0].packed.layout, NmLayout::kConvIsaDup);
  ASSERT_TRUE(verify_plan(plan).clean());
  // fields 2j / 2j+1 must agree; flip one bit of the duplicate (stays < M)
  plan.steps[0].packed.offsets[0] ^= 0x10;
  const VerifyReport rep = verify_plan(plan);
  EXPECT_TRUE(rep.has("pack.dup")) << rep.to_string();
  EXPECT_FALSE(rep.has("pack.offset_range"));
}

TEST(VerifyPackIsa, DenseChoiceWithPackedWeightsIsCaught) {
  const Graph g = single_fc({.tokens = 4, .c = 64, .k = 16}, 8);
  CompiledPlan plan = compile(g, options());
  ASSERT_TRUE(plan.steps[0].has_packed);
  plan.steps[0].choice = KernelChoice{KernelKind::kFcDense, 0};
  const VerifyReport rep = verify_plan(plan);
  EXPECT_TRUE(rep.has("pack.missing")) << rep.to_string();
}

// --- family 4: quantization range analysis ----------------------------------

TEST(VerifyQuant, BiasDrivenAccumulatorOverflowIsCaught) {
  // |acc| = 127 * sum|w| + |bias| past INT32_MAX: runs, but wraps.
  const Graph g =
      single_fc({.tokens = 4, .c = 64, .k = 16}, 0, 13, Requant{0, 0},
                std::numeric_limits<int32_t>::max());
  const CompiledPlan plan = compile(g, options());
  const VerifyReport rep = verify_plan(plan);
  EXPECT_TRUE(rep.has("quant.overflow")) << rep.to_string();
  EXPECT_FALSE(rep.ok());
}

TEST(VerifyQuant, WrappingRequantMultiplyIsAWarningNotAnError) {
  // worst |acc| fits int32, but acc * mult does not: suspicious, still
  // executable — must warn, must not fail the compile post-pass.
  const Graph g =
      single_fc({.tokens = 4, .c = 64, .k = 16}, 0, 13, Requant{4096, 25});
  CompileOptions opt = options();
  opt.verify_plans = true;
  Compiler compiler(opt, suite_cache());
  CompiledPlan plan;
  EXPECT_NO_THROW(plan = compiler.compile(g));
  const VerifyReport rep = verify_plan(plan);
  EXPECT_TRUE(rep.has("quant.wrap")) << rep.to_string();
  EXPECT_TRUE(rep.ok());
  EXPECT_FALSE(rep.clean());
  EXPECT_GE(rep.warnings(), 1);
}

// --- family 5: program / memory legality ------------------------------------

class VerifyProg : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = single_fc({.tokens = 4, .c = 64, .k = 16}, 8);
    plan_ = compile(graph_, options());
    ASSERT_TRUE(verify_plan(plan_).clean());
  }
  Graph graph_{std::vector<int>{1}};
  CompiledPlan plan_;
};

TEST_F(VerifyProg, MissingProgramIsCaught) {
  CompiledPlan p = plan_;
  p.steps[0].program = nullptr;
  EXPECT_TRUE(verify_plan(p).has("prog.missing"));
}

TEST_F(VerifyProg, RegisterIndexOutOfRangeIsCaught) {
  Program bad;
  bad.code.push_back(Instr{.op = Opcode::kAddi, .rd = 40});
  bad.code.push_back(Instr{.op = Opcode::kHalt});
  CompiledPlan p = plan_;
  p.steps[0].program = &bad;
  const VerifyReport rep = verify_plan(p);
  EXPECT_TRUE(rep.has("prog.reg")) << rep.to_string();
}

TEST_F(VerifyProg, BranchTargetOutsideProgramIsCaught) {
  Program bad;
  bad.code.push_back(Instr{.op = Opcode::kBne, .imm = 99});
  bad.code.push_back(Instr{.op = Opcode::kHalt});
  CompiledPlan p = plan_;
  p.steps[0].program = &bad;
  EXPECT_TRUE(verify_plan(p).has("prog.target"));
}

TEST_F(VerifyProg, ProgramWithoutHaltIsCaught) {
  Program bad;
  bad.code.push_back(Instr{.op = Opcode::kAddi});
  CompiledPlan p = plan_;
  p.steps[0].program = &bad;
  EXPECT_TRUE(verify_plan(p).has("prog.halt"));
}

TEST_F(VerifyProg, L1BudgetViolationIsCaught) {
  CompiledPlan p = plan_;
  p.steps[0].fc_tiles.l1_bytes = MemoryMap::kL1Size + 1;
  EXPECT_TRUE(verify_plan(p).has("mem.l1"));
}

TEST_F(VerifyProg, WrongDeployedWeightBytesIsCaught) {
  CompiledPlan p = plan_;
  p.weight_bytes += 1;
  EXPECT_TRUE(verify_plan(p).has("mem.weight_bytes"));
}

TEST_F(VerifyProg, WrongCycleTotalsAreCaught) {
  CompiledPlan p = plan_;
  p.steps[0].report.total_cycles += 1;
  const VerifyReport rep = verify_plan(p);
  EXPECT_TRUE(rep.has("report.cycles")) << rep.to_string();
  EXPECT_TRUE(rep.has("plan.totals")) << rep.to_string();
}

TEST_F(VerifyProg, StepNotMirroringItsNodeIsCaught) {
  CompiledPlan p = plan_;
  p.steps[0].node_id = 2;
  EXPECT_TRUE(verify_plan(p).has("plan.steps"));
}

// --- shard verification -----------------------------------------------------

class VerifyShard : public ::testing::Test {
 protected:
  void SetUp() override {
    // large enough conv to compile to several tiles
    graph_ = single_conv({.ix = 16, .iy = 16, .c = 64, .k = 64, .fx = 3,
                          .fy = 3, .stride = 1, .pad = 1},
                         8);
    CompileOptions opt = options(true);
    opt.num_clusters = 2;
    plan_ = compile(graph_, opt);
    ShardPlanner planner(2);
    shard_ = planner.plan(plan_);
    ASSERT_TRUE(verify_shard(plan_, shard_).clean());
    step_ = -1;
    for (size_t i = 0; i < shard_.steps.size(); ++i) {
      if (shard_.steps[i].axis == ShardAxis::kGemmTiles &&
          shard_.steps[i].active_clusters() == 2) {
        step_ = static_cast<int>(i);
        break;
      }
    }
    ASSERT_GE(step_, 0) << "no tile-sharded step to corrupt";
  }
  Graph graph_{std::vector<int>{1}};
  CompiledPlan plan_;
  ShardPlan shard_;
  int step_ = -1;
};

TEST_F(VerifyShard, TileAssignedTwiceIsCaught) {
  ShardPlan s = shard_;
  StepShard& ss = s.steps[static_cast<size_t>(step_)];
  ss.slices[0].tiles.push_back(ss.slices[1].tiles[0]);
  const VerifyReport rep = verify_shard(plan_, s);
  EXPECT_TRUE(rep.has("shard.tiles")) << rep.to_string();
  EXPECT_TRUE(rep.has("shard.out_bytes")) << rep.to_string();
}

TEST_F(VerifyShard, TileAssignedNowhereIsCaught) {
  ShardPlan s = shard_;
  s.steps[static_cast<size_t>(step_)].slices[1].tiles.pop_back();
  const VerifyReport rep = verify_shard(plan_, s);
  EXPECT_TRUE(rep.has("shard.tiles")) << rep.to_string();
}

TEST_F(VerifyShard, AxisMismatchIsCaught) {
  ShardPlan s = shard_;
  s.steps[static_cast<size_t>(step_)].axis = ShardAxis::kRows;
  EXPECT_TRUE(verify_shard(plan_, s).has("shard.axis"));
}

TEST_F(VerifyShard, WrongCriticalPathIsCaught) {
  ShardPlan s = shard_;
  s.steps[static_cast<size_t>(step_)].critical_cycles += 1;
  const VerifyReport rep = verify_shard(plan_, s);
  EXPECT_TRUE(rep.has("shard.cycles")) << rep.to_string();
  EXPECT_TRUE(rep.has("shard.total")) << rep.to_string();
}

TEST(VerifyShardFcC, ReductionRangesMustTileTheFeatureAxis) {
  // single-tile FC: the planner splits the input-feature axis instead
  const Graph g = single_fc({.tokens = 3, .c = 512, .k = 4}, 8, 44);
  const CompiledPlan plan = compile(g, options(true));
  ASSERT_EQ(plan.steps[0].tile_costs.size(), 1u);
  ShardPlanner planner(4);
  ShardPlan shard = planner.plan(plan);
  ASSERT_EQ(shard.steps[0].axis, ShardAxis::kFcC);
  ASSERT_TRUE(verify_shard(plan, shard).clean());
  shard.steps[0].slices[1].c_range.first += 4;  // gap in [0, C)
  const VerifyReport rep = verify_shard(plan, shard);
  EXPECT_TRUE(rep.has("shard.crange")) << rep.to_string();
}

TEST(VerifyShardFcC, BatchedPlansAreRejected) {
  const Graph g = single_fc({.tokens = 3, .c = 512, .k = 4}, 8, 44);
  CompileOptions opt = options(true);
  const CompiledPlan plan = compile(g, opt);
  ShardPlanner planner(2);
  const ShardPlan shard = planner.plan(plan);
  opt.batch = 2;
  const CompiledPlan batched = compile(g, opt);
  EXPECT_TRUE(verify_shard(batched, shard).has("shard.batch"));
}

}  // namespace
}  // namespace decimate
