// Model-builder tests: graph structure, parameter counts vs the paper,
// sparsity placement, and a scaled-down end-to-end execution.

#include <gtest/gtest.h>

#include "compiler/schedule.hpp"
#include "models/models.hpp"
#include "nn/prune.hpp"

namespace decimate {
namespace {

TEST(Resnet18, ParameterCountMatchesPaper) {
  // Paper Table 2: 11.22 MB dense. (Ours counts the channel-padded stem.)
  const Graph g = build_resnet18({});
  int64_t params = 0;
  for (const auto& n : g.nodes()) {
    if (n.op == OpType::kConv2d || n.op == OpType::kFc) {
      params += n.weights.numel() + 4 * n.bias.numel();
    }
  }
  EXPECT_NEAR(static_cast<double>(params) / 1e6, 11.22, 0.25);
}

TEST(Resnet18, MacCountMatchesPaper) {
  // Dense 1x2 row of Table 2: 66.63 Mcyc at 8.33 MAC/cyc ~ 555 MMAC.
  const Graph g = build_resnet18({});
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e6, 555.0, 30.0);
}

TEST(Resnet18, SparsityPlacementFollowsPaper) {
  const Graph g = build_resnet18({.sparsity_m = 8});
  int sparse_3x3 = 0, dense_pw = 0, dense_3x3 = 0;
  for (const auto& n : g.nodes()) {
    if (n.op != OpType::kConv2d) continue;
    const bool is_sparse =
        detect_one_to_m(n.weights.flat(), n.conv.k, n.conv.fsz()) == 8;
    if (n.conv.fx == 3 && n.name != "stem") {
      EXPECT_TRUE(is_sparse) << n.name;
      ++sparse_3x3;
    } else if (n.conv.fx == 1) {
      EXPECT_FALSE(is_sparse) << n.name;
      ++dense_pw;
    } else {
      ++dense_3x3;  // stem
    }
  }
  EXPECT_EQ(sparse_3x3, 16);  // 8 blocks x 2 convs
  EXPECT_EQ(dense_pw, 3);     // 3 downsample convs
  EXPECT_EQ(dense_3x3, 1);    // stem
}

TEST(Resnet18, SparseWeightBytesShrinkAsInPaper) {
  // Table 2 memory column: 11.22 -> ~2.3 MB at 1:8 (SW layout).
  CompileOptions opt;
  int64_t dense_bytes_ = 0, sparse_bytes = 0;
  {
    const Graph g = build_resnet18({});
    for (const auto& n : g.nodes()) {
      if (n.op == OpType::kConv2d || n.op == OpType::kFc) {
        dense_bytes_ += deployed_weight_bytes(n, select_kernel(n, opt));
      }
    }
  }
  {
    const Graph g = build_resnet18({.sparsity_m = 8});
    for (const auto& n : g.nodes()) {
      if (n.op == OpType::kConv2d || n.op == OpType::kFc) {
        sparse_bytes += deployed_weight_bytes(n, select_kernel(n, opt));
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(dense_bytes_) / 1e6, 11.22, 0.25);
  EXPECT_NEAR(static_cast<double>(sparse_bytes) / 1e6, 2.3, 0.25);
}

TEST(Vit, ParameterAndMacCountsMatchPaper) {
  // Paper Table 2: 21.59 MB dense; dense cycles/MAC imply ~4.5 GMAC.
  const Graph g = build_vit({});
  int64_t params = 0;
  for (const auto& n : g.nodes()) {
    if (n.op == OpType::kConv2d || n.op == OpType::kFc) {
      params += n.weights.numel() + 4 * n.bias.numel();
    }
  }
  EXPECT_NEAR(static_cast<double>(params) / 1e6, 21.6, 0.7);
  EXPECT_NEAR(static_cast<double>(g.total_macs()) / 1e9, 4.53, 0.25);
}

TEST(Vit, FfnShareMatchesPaper) {
  // Sec. 5.3: sparsified FC layers are ~65% of parameters, ~60% of MACs.
  const Graph g = build_vit({});
  int64_t ffn_params = 0, all_params = 0, ffn_macs = 0;
  for (const auto& n : g.nodes()) {
    if (n.op == OpType::kConv2d || n.op == OpType::kFc) {
      all_params += n.weights.numel();
      if (n.name.find(".ffn.") != std::string::npos) {
        ffn_params += n.weights.numel();
        ffn_macs += n.fc.macs();
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(ffn_params) / all_params, 0.65, 0.03);
  EXPECT_NEAR(static_cast<double>(ffn_macs) / g.total_macs(), 0.60, 0.04);
}

TEST(Vit, SparsityOnlyOnFfn) {
  const Graph g = build_vit({.sparsity_m = 16});
  for (const auto& n : g.nodes()) {
    if (n.op != OpType::kFc) continue;
    const bool is_sparse =
        detect_one_to_m(n.weights.flat(), n.fc.k, n.fc.c) != 0;
    if (n.name.find(".ffn.") != std::string::npos) {
      EXPECT_TRUE(is_sparse) << n.name;
    } else {
      EXPECT_FALSE(is_sparse) << n.name;
    }
  }
}

TEST(Vit, ScaledDownEndToEndRuns) {
  // A 64x64 ViT-descendant small enough to execute fully in a test.
  VitOptions opt;
  opt.image_hw = 64;
  opt.dim = 64;
  opt.depth = 2;
  opt.heads = 2;
  opt.mlp = 256;
  opt.sparsity_m = 8;
  const Graph g = build_vit(opt);
  Rng rng(5);
  const Tensor8 input = Tensor8::random({64, 64, 4}, rng);
  CompileOptions copt;
  copt.enable_isa = true;
  ScheduleExecutor exec(copt);
  const NetworkRun run = exec.run(g, input);
  EXPECT_EQ(run.output.shape(), (std::vector<int>{1, 10}));
  EXPECT_GT(run.total_cycles, 0u);
  EXPECT_GT(run.macs_per_cycle(), 0.1);
}

TEST(Resnet18, ScaledDownEndToEndSparseBeatsDense) {
  Resnet18Options ropt;
  ropt.input_hw = 16;  // scaled-down spatial size for test speed
  Rng rng(6);
  const Tensor8 input = Tensor8::random({16, 16, 4}, rng);
  CompileOptions copt;
  ScheduleExecutor dense_exec(copt);
  const auto dense = dense_exec.run(build_resnet18(ropt), input);
  ropt.sparsity_m = 16;
  copt.enable_isa = true;
  ScheduleExecutor sparse_exec(copt);
  const auto sparse = sparse_exec.run(build_resnet18(ropt), input);
  EXPECT_LT(sparse.total_cycles, dense.total_cycles);
  EXPECT_LT(sparse.weight_bytes, dense.weight_bytes);
  EXPECT_GT(static_cast<double>(dense.total_cycles) /
                static_cast<double>(sparse.total_cycles),
            1.5);
}

}  // namespace
}  // namespace decimate
