// Property-style parameterized sweeps:
//  - vector kernels vs reference over many geometries
//  - pruning invariants (idempotence, NZ counts, magnitude preservation)
//  - tiling plans (fit, coverage, grain alignment) over random geometries
//  - executor ISS-verification across sparsity/kernel configurations

#include <gtest/gtest.h>

#include "compiler/schedule.hpp"
#include "kernels/vecops.hpp"
#include "nn/ref_ops.hpp"
#include "testutil.hpp"

namespace decimate {
namespace {

// ---------------------------------------------------------------- vec ops --

class SoftmaxLayernormSweep
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SoftmaxLayernormSweep, MatchReference) {
  const auto [t, l] = GetParam();
  Rng rng(static_cast<uint64_t>(t * 1000 + l));
  test::TestRig rig;
  const Tensor8 x = Tensor8::random({t, l}, rng);
  const auto exp_lut = build_exp_lut(0.125f);
  EXPECT_TRUE(run_softmax(*rig.cluster, x, exp_lut).output ==
              softmax_s8(x, exp_lut))
      << "softmax t=" << t << " l=" << l;
  Tensor8 gamma({l}), beta({l});
  for (int i = 0; i < l; ++i) {
    gamma[i] = static_cast<int8_t>(rng.uniform_int(30, 100));
    beta[i] = static_cast<int8_t>(rng.uniform_int(-30, 30));
  }
  EXPECT_TRUE(run_layernorm(*rig.cluster, x, gamma, beta).output ==
              layernorm_s8(x, gamma, beta))
      << "layernorm t=" << t << " l=" << l;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SoftmaxLayernormSweep,
    ::testing::Values(std::pair{1, 4}, std::pair{1, 197}, std::pair{3, 17},
                      std::pair{8, 64}, std::pair{16, 196}, std::pair{7, 33},
                      std::pair{2, 1536}, std::pair{196, 196}));

class ElementwiseSweep : public ::testing::TestWithParam<int> {};

TEST_P(ElementwiseSweep, ReluAddLutMatchReference) {
  const int n = GetParam();
  Rng rng(static_cast<uint64_t>(n));
  test::TestRig rig;
  const Tensor8 a = Tensor8::random({n}, rng);
  const Tensor8 b = Tensor8::random({n}, rng);
  const Requant ra{rng.uniform_int(1, 7), rng.uniform_int(0, 4)};
  const Requant rb{rng.uniform_int(1, 7), rng.uniform_int(0, 4)};
  EXPECT_TRUE(run_add(*rig.cluster, a, ra, b, rb).output ==
              add_s8(a, ra, b, rb));
  const auto lut = build_gelu_lut(0.04f, 0.04f);
  EXPECT_TRUE(run_lut(*rig.cluster, a, lut).output == lut_s8(a, lut));
  if (n % 4 == 0) {
    EXPECT_TRUE(run_relu(*rig.cluster, a).output == relu_s8(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ElementwiseSweep,
                         ::testing::Values(1, 3, 4, 7, 16, 100, 1024, 4096));

class PoolSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PoolSweep, PoolsMatchReference) {
  const auto [h, w, c] = GetParam();
  Rng rng(static_cast<uint64_t>(h * 100 + w * 10 + c));
  test::TestRig rig;
  const Tensor8 x = Tensor8::random({h, w, c}, rng);
  const Requant rq{1, static_cast<int32_t>(ceil_log2(
                          static_cast<uint64_t>(h) * w))};
  EXPECT_TRUE(run_avgpool(*rig.cluster, x, rq).output ==
              global_avgpool_s8(x, rq));
  if (h % 2 == 0 && w % 2 == 0) {
    EXPECT_TRUE(run_maxpool2x2(*rig.cluster, x).output == maxpool2x2_s8(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, PoolSweep,
                         ::testing::Values(std::tuple{2, 2, 4},
                                           std::tuple{4, 4, 512},
                                           std::tuple{8, 8, 64},
                                           std::tuple{3, 5, 16},
                                           std::tuple{14, 14, 384},
                                           std::tuple{32, 32, 8}));

// ---------------------------------------------------------------- pruning --

class PruneProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PruneProperty, InvariantsHold) {
  const auto [m, cols] = GetParam();
  if (cols % m != 0) GTEST_SKIP();
  Rng rng(static_cast<uint64_t>(m * cols));
  Tensor8 w = Tensor8::random({16, cols}, rng);
  Tensor8 orig = w;
  nm_prune(w.flat(), 16, cols, 1, m);
  // 1) pattern holds
  EXPECT_TRUE(is_nm_sparse(w.flat(), 16, cols, 1, m));
  // 2) idempotent
  Tensor8 again = w;
  nm_prune(again.flat(), 16, cols, 1, m);
  EXPECT_TRUE(again == w);
  // 3) survivors are unchanged values and block maxima by magnitude
  for (int r = 0; r < 16; ++r) {
    for (int b = 0; b < cols / m; ++b) {
      int nz = 0;
      int max_abs = 0;
      for (int i = 0; i < m; ++i) {
        max_abs = std::max<int>(max_abs,
                                std::abs(orig.at({r, b * m + i})));
      }
      for (int i = 0; i < m; ++i) {
        const int8_t v = w.at({r, b * m + i});
        if (v != 0) {
          ++nz;
          EXPECT_EQ(v, orig.at({r, b * m + i}));
          EXPECT_EQ(std::abs(static_cast<int>(v)), max_abs);
        }
      }
      EXPECT_LE(nz, 1);
    }
  }
  // 4) sparsity is at least (m-1)/m
  EXPECT_GE(sparsity(w.flat()), 1.0 - 1.0 / m - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PruneProperty,
    ::testing::Combine(::testing::Values(4, 8, 16),
                       ::testing::Values(16, 32, 48, 144, 576)));

// ----------------------------------------------------------------- tiling --

class TilingProperty : public ::testing::TestWithParam<int> {};

TEST_P(TilingProperty, RandomConvPlansFitAndCover) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  for (int trial = 0; trial < 8; ++trial) {
    ConvGeom g;
    // realistic MCU layer sizes (the tiler does not tile OX; a 3x3 layer
    // with C=512 and IX=64 would need x-tiling and throws instead)
    g.c = 4 * rng.uniform_int(1, 64);
    g.k = 4 * rng.uniform_int(1, 128);
    g.fx = g.fy = (rng.uniform_int(0, 1) != 0) ? 3 : 1;
    g.stride = rng.uniform_int(1, 2);
    g.pad = g.fx / 2;
    g.ix = g.iy = 2 * rng.uniform_int(2, 16) * g.stride;
    if (g.ox() % 2 != 0 || g.ox() < 2 || g.oy() < 1) continue;
    for (auto choice :
         {KernelChoice{KernelKind::kConvDense4x2, 0},
          KernelChoice{KernelKind::kConvSparseIsa, 16}}) {
      if (choice.sparse() && g.fsz() % choice.m != 0) continue;
      const auto plan = plan_conv_tiles(g, choice, 8, 120 * 1024);
      EXPECT_LE(plan.l1_bytes, 120 * 1024);
      EXPECT_GE(plan.oy_t, 1);
      EXPECT_GE(plan.k_t, 1);
      if (choice.kind == KernelKind::kConvDense4x2) {
        EXPECT_EQ(plan.k_t % 4, 0);
      }
      // tiles cover the layer
      EXPECT_GE(plan.oy_t * plan.n_oy, g.oy());
      EXPECT_GE(plan.k_t * plan.n_k, g.k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TilingProperty, ::testing::Range(1, 6));

TEST(TilingProperty, OversizedLayerThrowsCleanly) {
  // 3x3 with huge C and wide input: the per-core im2col buffers plus one
  // input row exceed L1 and no OX tiling exists -> a diagnosable error.
  const ConvGeom g{.ix = 64, .iy = 64, .c = 512, .k = 32, .fx = 3, .fy = 3,
                   .stride = 1, .pad = 1};
  EXPECT_THROW(
      plan_conv_tiles(g, {KernelKind::kConvDense4x2, 0}, 8, 120 * 1024),
      Error);
}

// --------------------------------------------------------------- executor --

struct E2eCase {
  int m;
  bool isa;
};

class ExecutorVerifySweep : public ::testing::TestWithParam<E2eCase> {};

TEST_P(ExecutorVerifySweep, SingleTileLayersReplayOnIss) {
  const auto [m, isa] = GetParam();
  Rng rng(static_cast<uint64_t>(m) * 31 + isa);
  Graph g({8, 8, 32});
  const ConvGeom cg{.ix = 8, .iy = 8, .c = 32, .k = 16, .fx = 3, .fy = 3,
                    .stride = 1, .pad = 1};
  Node conv;
  conv.op = OpType::kConv2d;
  conv.name = "conv";
  conv.inputs = {0};
  conv.conv = cg;
  conv.weights = m ? test::random_sparse_weights(16, cg.fsz(), m, rng)
                   : test::random_weights(16, cg.fsz(), rng);
  conv.bias = test::random_bias(16, rng);
  conv.rq = calibrate_requant(cg.fsz());
  conv.out_shape = {8, 8, 16};
  const int c1 = g.add(std::move(conv));
  Node fc;
  fc.op = OpType::kReshape;
  fc.name = "flat";
  fc.inputs = {c1};
  fc.out_shape = {1, 8 * 8 * 16};
  const int f = g.add(std::move(fc));
  Node head;
  head.op = OpType::kFc;
  head.name = "head";
  head.inputs = {f};
  head.fc = FcGeom{.tokens = 1, .c = 1024, .k = 16};
  head.weights = m ? test::random_sparse_weights(16, 1024, m, rng)
                   : test::random_weights(16, 1024, rng);
  head.bias = test::random_bias(16, rng);
  head.rq = calibrate_requant(1024);
  head.out_shape = {1, 16};
  g.add(std::move(head));

  const Tensor8 input = Tensor8::random({8, 8, 32}, rng);
  CompileOptions opt;
  opt.enable_isa = isa;
  ScheduleExecutor exec(opt);
  exec.set_verify_with_sim(true);  // throws on ISS/reference divergence
  const NetworkRun run = exec.run(g, input);
  EXPECT_GT(run.total_cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ExecutorVerifySweep,
    ::testing::Values(E2eCase{0, false}, E2eCase{4, false}, E2eCase{4, true},
                      E2eCase{8, false}, E2eCase{8, true}, E2eCase{16, false},
                      E2eCase{16, true}));

// ------------------------------------------------------------ requant -----

class RequantProperty : public ::testing::TestWithParam<int> {};

TEST_P(RequantProperty, ApproximatesScaleWithoutOverflow) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    const int fan_in = rng.uniform_int(16, 4096);
    const double scale = 1.0 / rng.uniform_int(50, 5000);
    const int64_t max_acc = static_cast<int64_t>(fan_in) * 127 * 127;
    const Requant rq = make_requant(scale, max_acc);
    EXPECT_LE(static_cast<int64_t>(rq.mult) * max_acc, (1ll << 31) - 1);
    const int32_t acc = rng.uniform_int(-100000, 100000);
    const double ideal = acc * scale;
    if (std::abs(ideal) < 120) {
      EXPECT_NEAR(rq.apply(acc), ideal, std::max(2.0, std::abs(ideal) * 0.1));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RequantProperty, ::testing::Range(1, 5));

}  // namespace
}  // namespace decimate
